#include "relational/relation.h"

#include <algorithm>

namespace diffc {

Result<Relation> Relation::Make(int num_attrs, std::vector<std::vector<int>> tuples) {
  if (num_attrs < 0 || num_attrs > 64) {
    return Status::InvalidArgument("relation schema must have 0..64 attributes");
  }
  for (const std::vector<int>& t : tuples) {
    if (static_cast<int>(t.size()) != num_attrs) {
      return Status::InvalidArgument("tuple arity does not match schema");
    }
  }
  std::vector<std::vector<int>> sorted = tuples;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    return Status::InvalidArgument("duplicate tuple in relation");
  }
  return Relation(num_attrs, std::move(tuples));
}

bool Relation::AgreeOn(int i, int j, const ItemSet& x) const {
  const std::vector<int>& a = tuples_[i];
  const std::vector<int>& b = tuples_[j];
  bool agree = true;
  ForEachBit(x.bits(), [&](int attr) {
    if (a[attr] != b[attr]) agree = false;
  });
  return agree;
}

std::vector<int> Relation::Project(int i, const ItemSet& x) const {
  std::vector<int> out;
  out.reserve(x.size());
  ForEachBit(x.bits(), [&](int attr) { out.push_back(tuples_[i][attr]); });
  return out;
}

}  // namespace diffc
