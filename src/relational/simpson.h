#ifndef DIFFC_RELATIONAL_SIMPSON_H_
#define DIFFC_RELATIONAL_SIMPSON_H_

#include "lattice/mobius.h"
#include "relational/distribution.h"
#include "relational/relation.h"
#include "util/rational.h"

namespace diffc {

/// The Simpson function of a nonempty probabilistic relation
/// (Definition 7.1):
///
///   simpson_{r,p}(X) = Σ_{x ∈ π_X(r)} p_X(x)^2,
///
/// a measure of how uniform the X-projections of `r` are under `p`
/// (Simpson's diversity index, 1949). Computed exactly over rationals for
/// every `X ⊆ S`; O(2^n · |r| log |r|). Requires a nonempty relation with
/// `p` matching its size and `num_attrs <= kMaxSetFunctionBits`.
Result<SetFunction<Rational>> SimpsonFunction(const Relation& r, const Distribution& p);

/// The density of the Simpson function computed directly from the
/// pair-summation formula of Proposition 7.2:
///
///   d(X) = Σ_{t,t' ∈ r, t[X]=t'[X], ∀y∉X: t(y)≠t'(y)} p(t)·p(t'),
///
/// manifestly nonnegative (so Simpson functions are frequency functions).
/// O(2^n · |r|^2); the test suite checks it equals `Density(SimpsonFunction)`.
Result<SetFunction<Rational>> SimpsonDensityDirect(const Relation& r,
                                                   const Distribution& p);

}  // namespace diffc

#endif  // DIFFC_RELATIONAL_SIMPSON_H_
