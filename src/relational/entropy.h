#ifndef DIFFC_RELATIONAL_ENTROPY_H_
#define DIFFC_RELATIONAL_ENTROPY_H_

#include "lattice/mobius.h"
#include "relational/distribution.h"
#include "relational/relation.h"

namespace diffc {

/// Shannon-entropy functions over probabilistic relations — the measure
/// Lee, Malvestuto, and Dalkilic–Robertson coupled to the attribute space
/// before the paper's Simpson function, and the subject of the paper's
/// explicit open problem: *"It remains an open problem whether results in
/// this section apply to Shannon functions."* This module provides the
/// Shannon machinery and the empirical probe (experiment E9).

/// The Shannon function `H(X) = -Σ_{x ∈ π_X(r)} p_X(x) log2 p_X(x)` for
/// every attribute set. Requires a nonempty relation with a matching
/// distribution; O(2^n · |r| log |r|).
Result<SetFunction<double>> ShannonFunction(const Relation& r, const Distribution& p);

/// Conditional entropy `H(Y | X) = H(X ∪ Y) - H(X)` read off a
/// precomputed Shannon function.
double ConditionalEntropy(const SetFunction<double>& h, const ItemSet& x, const ItemSet& y);

/// The information dependency (Dalkilic–Robertson): `X -> Y` holds iff
/// `H(Y | X) = 0` — equivalent to FD satisfaction in the relation.
bool SatisfiesInformationDependency(const SetFunction<double>& h, const ItemSet& x,
                                    const ItemSet& y, double eps = 1e-9);

/// The paper's open-problem probe: the *Shannon complement function*
/// `g(X) = H(S) - H(X)`, the natural entropy analogue of the Simpson
/// function's direction (decreasing in X, like simpson). Its first-order
/// differentials are conditional entropies `H(Y|X) >= 0` and its
/// second-order differentials are conditional mutual informations
/// `I(Y;Z|X) >= 0`, but third-order differentials (interaction
/// information) can be negative — which is exactly why the paper's
/// Section 7 results are open for Shannon functions. Tests and the E9
/// bench measure how often density-based satisfaction of `g` agrees with
/// the boolean-dependency semantics that Simpson functions match exactly
/// (Proposition 7.3).
Result<SetFunction<double>> ShannonComplementFunction(const Relation& r,
                                                      const Distribution& p);

}  // namespace diffc

#endif  // DIFFC_RELATIONAL_ENTROPY_H_
