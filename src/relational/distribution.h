#ifndef DIFFC_RELATIONAL_DISTRIBUTION_H_
#define DIFFC_RELATIONAL_DISTRIBUTION_H_

#include <vector>

#include "util/rational.h"
#include "util/status.h"

namespace diffc {

/// A probability distribution over the tuples of a relation
/// (Definition 7.1): exact rational weights, strictly positive on every
/// tuple (the paper requires `p(t) ≠ 0` for `t ∈ r`), summing to 1.
class Distribution {
 public:
  /// Builds a distribution from `weights` (one per tuple).
  static Result<Distribution> Make(std::vector<Rational> weights);

  /// The uniform distribution over `size` tuples. Requires size >= 1.
  static Result<Distribution> Uniform(int size);

  /// Number of tuples covered.
  int size() const { return static_cast<int>(weights_.size()); }
  /// Probability of tuple `i`.
  const Rational& weight(int i) const { return weights_[i]; }

 private:
  explicit Distribution(std::vector<Rational> weights) : weights_(std::move(weights)) {}

  std::vector<Rational> weights_;
};

}  // namespace diffc

#endif  // DIFFC_RELATIONAL_DISTRIBUTION_H_
