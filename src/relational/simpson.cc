#include "relational/simpson.h"

#include <map>

namespace diffc {

namespace {

Status CheckArgs(const Relation& r, const Distribution& p) {
  if (r.size() == 0) {
    return Status::InvalidArgument("Simpson function requires a nonempty relation");
  }
  if (p.size() != r.size()) {
    return Status::InvalidArgument("distribution size does not match relation");
  }
  return Status::Ok();
}

}  // namespace

Result<SetFunction<Rational>> SimpsonFunction(const Relation& r, const Distribution& p) {
  if (Status s = CheckArgs(r, p); !s.ok()) return s;
  Result<SetFunction<Rational>> f = SetFunction<Rational>::Make(r.num_attrs());
  if (!f.ok()) return f.status();
  const Mask full = FullMask(r.num_attrs());
  for (Mask x = 0;; ++x) {
    ItemSet attrs(x);
    std::map<std::vector<int>, Rational> groups;
    for (int i = 0; i < r.size(); ++i) {
      groups[r.Project(i, attrs)] += p.weight(i);
    }
    Rational acc;
    for (const auto& [key, weight] : groups) acc += weight * weight;
    if (acc.Overflowed()) {
      return Status::OutOfRange("rational overflow computing Simpson function");
    }
    f->at(x) = acc;
    if (x == full) break;
  }
  return f;
}

Result<SetFunction<Rational>> SimpsonDensityDirect(const Relation& r,
                                                   const Distribution& p) {
  if (Status s = CheckArgs(r, p); !s.ok()) return s;
  Result<SetFunction<Rational>> d = SetFunction<Rational>::Make(r.num_attrs());
  if (!d.ok()) return d.status();
  const int n = r.num_attrs();
  const Mask full = FullMask(n);
  for (Mask x = 0;; ++x) {
    ItemSet attrs(x);
    ItemSet complement = attrs.ComplementIn(n);
    Rational acc;
    for (int i = 0; i < r.size(); ++i) {
      for (int j = 0; j < r.size(); ++j) {
        if (!r.AgreeOn(i, j, attrs)) continue;
        // c(X, t, t'): t and t' differ on *every* attribute outside X.
        bool differ_everywhere = true;
        ForEachBit(complement.bits(), [&](int attr) {
          if (r.tuple(i)[attr] == r.tuple(j)[attr]) differ_everywhere = false;
        });
        if (differ_everywhere) acc += p.weight(i) * p.weight(j);
      }
    }
    if (acc.Overflowed()) {
      return Status::OutOfRange("rational overflow computing Simpson density");
    }
    d->at(x) = acc;
    if (x == full) break;
  }
  return d;
}

}  // namespace diffc
