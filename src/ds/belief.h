#ifndef DIFFC_DS_BELIEF_H_
#define DIFFC_DS_BELIEF_H_

#include <vector>

#include "core/constraint.h"
#include "lattice/mobius.h"
#include "util/rational.h"
#include "util/status.h"

namespace diffc {

/// Dempster–Shafer belief functions — the third application domain the
/// paper's conclusion names for measure/differential constraints (via
/// Halpern's exposition). A *mass function* assigns nonnegative evidence
/// to subsets of the frame of discernment `S`, summing to 1 with
/// `m(∅) = 0`; its *focal elements* are the sets of positive mass.
///
/// The bridge to the paper: the commonality function
/// `Q(X) = Σ_{U ⊇ X} m(U)` has density exactly `m >= 0`, so `Q` is a
/// frequency function in the sense of Section 6, and `Q` satisfies the
/// differential constraint `X -> Y` iff every focal element containing
/// `X` contains some member of `Y` — the disjunctive-rule semantics with
/// focal elements playing the role of baskets.
class MassFunction {
 public:
  /// Builds a mass function from dense values over an `n`-attribute frame.
  /// Requires nonnegative values, total mass 1, and `values.at(∅) = 0`.
  static Result<MassFunction> Make(SetFunction<Rational> values);

  /// The vacuous mass function: all mass on the full frame (total
  /// ignorance). Requires 1 <= n <= kMaxSetFunctionBits.
  static Result<MassFunction> Vacuous(int n);

  /// A Bayesian mass function from a probability vector over singletons
  /// (`probabilities[i]` = mass of `{i}`; must be nonnegative, sum 1).
  static Result<MassFunction> Bayesian(const std::vector<Rational>& probabilities);

  /// Frame size.
  int n() const { return values_.n(); }
  /// Mass of the subset `m`.
  const Rational& mass(Mask m) const { return values_.at(m); }
  /// The dense mass values.
  const SetFunction<Rational>& values() const { return values_; }

  /// The focal elements (sets of positive mass), sorted by mask.
  std::vector<ItemSet> FocalElements() const;

  /// Belief: `Bel(X) = Σ_{U ⊆ X} m(U)` (with m(∅)=0 this is the standard
  /// definition). Computed for all X via the subset zeta transform.
  SetFunction<Rational> Belief() const;

  /// Plausibility: `Pl(X) = Σ_{U ∩ X ≠ ∅} m(U) = 1 - Bel(S∖X)`.
  SetFunction<Rational> Plausibility() const;

  /// Commonality: `Q(X) = Σ_{U ⊇ X} m(U)` — the frequency-function face;
  /// `Density(Commonality()) == values()`.
  SetFunction<Rational> Commonality() const;

  /// True iff every focal element is a singleton (a probability measure).
  bool IsBayesian() const;

  /// True iff the focal elements are nested (a consonant body of
  /// evidence, i.e. a possibility measure).
  bool IsConsonant() const;

  /// Satisfaction of a differential constraint by the commonality
  /// function — equivalently, `m` vanishes on `L(X, Y)`: every focal
  /// element containing X contains some member of Y.
  bool SatisfiesConstraint(const DifferentialConstraint& c) const;

 private:
  explicit MassFunction(SetFunction<Rational> values) : values_(std::move(values)) {}

  SetFunction<Rational> values_;
};

/// Dempster's rule of combination:
///
///   (m1 ⊕ m2)(X) = (1/(1-K)) Σ_{U ∩ V = X, X ≠ ∅} m1(U) m2(V),
///   K = Σ_{U ∩ V = ∅} m1(U) m2(V)   (the conflict).
///
/// Fails with FailedPrecondition when the bodies of evidence are totally
/// conflicting (K = 1). Cost O(F1 · F2) over focal elements.
Result<MassFunction> DempsterCombine(const MassFunction& m1, const MassFunction& m2);

/// The conflict mass `K` between two bodies of evidence.
Result<Rational> DempsterConflict(const MassFunction& m1, const MassFunction& m2);

}  // namespace diffc

#endif  // DIFFC_DS_BELIEF_H_
