#include "ds/belief.h"

namespace diffc {

Result<MassFunction> MassFunction::Make(SetFunction<Rational> values) {
  if (values.n() < 1) {
    return Status::InvalidArgument("mass function needs a nonempty frame");
  }
  if (!values.at(Mask{0}).IsZero()) {
    return Status::InvalidArgument("mass of the empty set must be 0");
  }
  Rational total;
  for (Mask m = 0; m < values.size(); ++m) {
    if (values.at(m).IsNegative()) {
      return Status::InvalidArgument("mass values must be nonnegative");
    }
    total += values.at(m);
  }
  if (total != Rational(1)) {
    return Status::InvalidArgument("total mass must be 1, got " + total.ToString());
  }
  return MassFunction(std::move(values));
}

Result<MassFunction> MassFunction::Vacuous(int n) {
  Result<SetFunction<Rational>> values = SetFunction<Rational>::Make(n);
  if (!values.ok()) return values.status();
  if (n < 1) return Status::InvalidArgument("mass function needs a nonempty frame");
  values->at(FullMask(n)) = Rational(1);
  return Make(*std::move(values));
}

Result<MassFunction> MassFunction::Bayesian(const std::vector<Rational>& probabilities) {
  const int n = static_cast<int>(probabilities.size());
  Result<SetFunction<Rational>> values = SetFunction<Rational>::Make(n);
  if (!values.ok()) return values.status();
  for (int i = 0; i < n; ++i) values->at(Mask{1} << i) = probabilities[i];
  return Make(*std::move(values));
}

std::vector<ItemSet> MassFunction::FocalElements() const {
  std::vector<ItemSet> out;
  for (Mask m = 0; m < values_.size(); ++m) {
    if (!values_.at(m).IsZero()) out.push_back(ItemSet(m));
  }
  return out;
}

SetFunction<Rational> MassFunction::Belief() const {
  SetFunction<Rational> bel = values_;
  ZetaSubsetInPlace(bel);
  return bel;
}

SetFunction<Rational> MassFunction::Plausibility() const {
  SetFunction<Rational> bel = Belief();
  SetFunction<Rational> pl = *SetFunction<Rational>::Make(n());
  const Mask full = FullMask(n());
  for (Mask m = 0; m < pl.size(); ++m) {
    pl.at(m) = Rational(1) - bel.at(full & ~m);
  }
  return pl;
}

SetFunction<Rational> MassFunction::Commonality() const {
  SetFunction<Rational> q = values_;
  ZetaSupersetInPlace(q);
  return q;
}

bool MassFunction::IsBayesian() const {
  for (Mask m = 0; m < values_.size(); ++m) {
    if (!values_.at(m).IsZero() && Popcount(m) != 1) return false;
  }
  return true;
}

bool MassFunction::IsConsonant() const {
  std::vector<ItemSet> focal = FocalElements();
  for (const ItemSet& a : focal) {
    for (const ItemSet& b : focal) {
      if (!a.IsSubsetOf(b) && !b.IsSubsetOf(a)) return false;
    }
  }
  return true;
}

bool MassFunction::SatisfiesConstraint(const DifferentialConstraint& c) const {
  for (Mask m = 0; m < values_.size(); ++m) {
    if (values_.at(m).IsZero()) continue;
    ItemSet focal(m);
    if (c.lhs().IsSubsetOf(focal) && !c.rhs().SomeMemberSubsetOf(focal)) return false;
  }
  return true;
}

Result<Rational> DempsterConflict(const MassFunction& m1, const MassFunction& m2) {
  if (m1.n() != m2.n()) {
    return Status::InvalidArgument("combining mass functions over different frames");
  }
  Rational conflict;
  for (const ItemSet& u : m1.FocalElements()) {
    for (const ItemSet& v : m2.FocalElements()) {
      if (u.Intersect(v).empty()) conflict += m1.mass(u.bits()) * m2.mass(v.bits());
    }
  }
  return conflict;
}

Result<MassFunction> DempsterCombine(const MassFunction& m1, const MassFunction& m2) {
  Result<Rational> conflict = DempsterConflict(m1, m2);
  if (!conflict.ok()) return conflict.status();
  if (*conflict == Rational(1)) {
    return Status::FailedPrecondition(
        "totally conflicting bodies of evidence (K = 1) cannot be combined");
  }
  Result<SetFunction<Rational>> combined = SetFunction<Rational>::Make(m1.n());
  if (!combined.ok()) return combined.status();
  for (const ItemSet& u : m1.FocalElements()) {
    for (const ItemSet& v : m2.FocalElements()) {
      ItemSet x = u.Intersect(v);
      if (!x.empty()) combined->at(x) += m1.mass(u.bits()) * m2.mass(v.bits());
    }
  }
  const Rational normalizer = Rational(1) - *conflict;
  for (Mask m = 0; m < combined->size(); ++m) {
    combined->at(m) /= normalizer;
  }
  return MassFunction::Make(*std::move(combined));
}

}  // namespace diffc
