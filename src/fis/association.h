#ifndef DIFFC_FIS_ASSOCIATION_H_
#define DIFFC_FIS_ASSOCIATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fis/apriori.h"
#include "lattice/universe.h"
#include "util/status.h"

namespace diffc {

/// Association rules (Agrawal–Srikant): `lhs => rhs` with
/// `confidence = s(lhs ∪ rhs) / s(lhs)`. *Pure* association rules
/// (confidence 1) are exactly the single-alternative disjunctive rules of
/// Section 6 — the support function satisfies the differential constraint
/// `lhs -> {rhs}` — which is how the paper's augmentation rule explains
/// the classical "B({a}) = B({a,b})" counting shortcut.
struct AssociationRule {
  Mask lhs = 0;
  Mask rhs = 0;  ///< Disjoint from lhs, nonempty.
  std::int64_t support = 0;  ///< s(lhs ∪ rhs).
  double confidence = 0.0;

  /// True iff confidence is exactly 1 (s(lhs) == s(lhs ∪ rhs)).
  bool IsPure() const { return confidence == 1.0; }

  /// Renders "AB => C  (sup=…, conf=…)".
  std::string ToString(const Universe& u) const;
};

/// Generates all association rules among the frequent itemsets of
/// `apriori` with confidence at least `min_confidence` (> 0), splitting
/// each frequent itemset of size >= 2 into every nonempty lhs/rhs
/// partition. Rules are ordered by (itemset, lhs).
Result<std::vector<AssociationRule>> GenerateAssociationRules(const AprioriResult& apriori,
                                                              double min_confidence);

/// The pure rules only (confidence exactly 1).
Result<std::vector<AssociationRule>> GeneratePureRules(const AprioriResult& apriori);

}  // namespace diffc

#endif  // DIFFC_FIS_ASSOCIATION_H_
