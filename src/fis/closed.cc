#include "fis/closed.h"

namespace diffc {

ItemSet BasketClosure(const BasketList& b, const ItemSet& x) {
  Mask closure = FullMask(b.num_items());
  bool any = false;
  for (Mask basket : b.baskets()) {
    if (IsSubset(x.bits(), basket)) {
      closure &= basket;
      any = true;
    }
  }
  return any ? ItemSet(closure) : ItemSet(FullMask(b.num_items()));
}

Result<std::vector<CountedItemset>> ClosedFrequentItemsets(const BasketList& b,
                                                           std::int64_t min_support) {
  Result<AprioriResult> apriori = Apriori(b, min_support);
  if (!apriori.ok()) return apriori.status();
  std::vector<CountedItemset> closed;
  for (const CountedItemset& s : apriori->frequent) {
    if (BasketClosure(b, ItemSet(s.items)) == ItemSet(s.items)) closed.push_back(s);
  }
  return closed;  // Inherits (size, mask) order from the frequent list.
}

Result<std::vector<CountedItemset>> MaximalFrequentItemsets(const BasketList& b,
                                                            std::int64_t min_support) {
  Result<AprioriResult> apriori = Apriori(b, min_support);
  if (!apriori.ok()) return apriori.status();
  std::vector<CountedItemset> maximal;
  for (const CountedItemset& s : apriori->frequent) {
    bool has_frequent_superset = false;
    for (const CountedItemset& t : apriori->frequent) {
      if (t.items != s.items && IsSubset(s.items, t.items)) {
        has_frequent_superset = true;
        break;
      }
    }
    if (!has_frequent_superset) maximal.push_back(s);
  }
  return maximal;
}

DerivedSupport DeriveFromClosed(const std::vector<CountedItemset>& closed,
                                std::int64_t min_support, const ItemSet& x) {
  DerivedSupport out;
  bool found = false;
  std::int64_t best = 0;
  for (const CountedItemset& c : closed) {
    if (IsSubset(x.bits(), c.items) && (!found || c.support > best)) {
      best = c.support;
      found = true;
    }
  }
  if (found) {
    out.frequent = best >= min_support;
    out.support = best;
  } else {
    out.frequent = false;  // Not inside any closed frequent set.
  }
  return out;
}

}  // namespace diffc
