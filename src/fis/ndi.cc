#include "fis/ndi.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace diffc {

Result<SupportBounds> NdiBounds(Mask x, std::int64_t num_baskets,
                                const std::function<std::int64_t(Mask)>& support_of) {
  if (Popcount(x) > 20) {
    return Status::ResourceExhausted("NDI bounds over " + std::to_string(Popcount(x)) +
                                     " items");
  }
  SupportBounds bounds{0, num_baskets};
  if (x == 0) {
    // s(∅) = |B| exactly.
    bounds.lower = bounds.upper = num_baskets;
    return bounds;
  }
  ForEachSubset(x, [&](Mask y) {
    if (y == x) return;  // Proper subsets only.
    const Mask diff = x & ~y;
    // σ = -Σ_{T ⊊ X∖Y} (-1)^{|T|} s(Y ∪ T); the differential inequality
    // (-1)^{|X∖Y|} s(X) >= σ then bounds s(X) from below (|X∖Y| even) or
    // above (|X∖Y| odd).
    std::int64_t sigma = 0;
    ForEachSubset(diff, [&](Mask t) {
      if (t == diff) return;
      const std::int64_t s = support_of(y | t);
      sigma -= Popcount(t) % 2 == 0 ? s : -s;
    });
    if (Popcount(diff) % 2 == 0) {
      bounds.lower = std::max(bounds.lower, sigma);
    } else {
      bounds.upper = std::min(bounds.upper, -sigma);
    }
  });
  return bounds;
}

Result<NdiRepresentation> NdiRepresentation::Build(const BasketList& b,
                                                   std::int64_t min_support) {
  if (min_support < 1) {
    return Status::InvalidArgument("NDI representation requires min_support >= 1");
  }
  NdiRepresentation rep;
  rep.min_support_ = min_support;
  rep.num_baskets_ = b.size();

  // Supports of every frequent set seen so far (counted or derived).
  std::unordered_map<Mask, std::int64_t> supports;
  auto lookup = [&supports](Mask m) { return supports.at(m); };

  // Level 0: s(∅) = |B| is always derivable (never stored, never counted).
  if (b.size() < min_support) return rep;
  supports.emplace(0, b.size());

  std::vector<Mask> current_level{0};
  std::unordered_set<Mask> frequent_prev{0};

  while (!current_level.empty()) {
    std::vector<Mask> candidates;
    for (Mask base : current_level) {
      const int start = base == 0 ? 0 : 64 - std::countl_zero(base);
      for (int i = start; i < b.num_items(); ++i) {
        Mask candidate = base | (Mask{1} << i);
        bool all_in = true;
        ForEachBit(candidate, [&](int bit) {
          if (!frequent_prev.count(candidate & ~(Mask{1} << bit))) all_in = false;
        });
        if (all_in) candidates.push_back(candidate);
      }
    }
    if (candidates.empty()) break;

    // Split candidates into derivable (support known from bounds) and
    // non-derivable (must be counted).
    std::vector<std::pair<Mask, SupportBounds>> to_count;
    std::vector<std::pair<Mask, std::int64_t>> level_supports;
    for (Mask x : candidates) {
      Result<SupportBounds> bounds = NdiBounds(x, b.size(), lookup);
      if (!bounds.ok()) return bounds.status();
      if (bounds->Derivable()) {
        level_supports.emplace_back(x, bounds->lower);
      } else {
        to_count.emplace_back(x, *bounds);
      }
    }
    if (!to_count.empty()) {
      std::unordered_map<Mask, std::int64_t> counts;
      for (const auto& [x, bounds] : to_count) counts.emplace(x, 0);
      for (Mask basket : b.baskets()) {
        for (const auto& [x, bounds] : to_count) {
          if (IsSubset(x, basket)) ++counts[x];
        }
      }
      rep.candidates_counted_ += to_count.size();
      for (const auto& [x, bounds] : to_count) {
        const std::int64_t support = counts[x];
        level_supports.emplace_back(x, support);
        if (support >= min_support) rep.ndi_.push_back({x, support});
      }
    }

    std::vector<Mask> next_level;
    std::unordered_set<Mask> frequent_now = frequent_prev;
    std::sort(level_supports.begin(), level_supports.end());
    for (const auto& [x, support] : level_supports) {
      if (support >= min_support) {
        supports.emplace(x, support);
        next_level.push_back(x);
        frequent_now.insert(x);
      }
    }
    current_level = std::move(next_level);
    frequent_prev = std::move(frequent_now);
  }

  std::sort(rep.ndi_.begin(), rep.ndi_.end(),
            [](const CountedItemset& a, const CountedItemset& b2) {
              if (Popcount(a.items) != Popcount(b2.items)) {
                return Popcount(a.items) < Popcount(b2.items);
              }
              return a.items < b2.items;
            });
  return rep;
}

std::optional<std::int64_t> NdiRepresentation::SupportOf(
    Mask x, std::vector<std::pair<Mask, std::optional<std::int64_t>>>& memo) const {
  for (const auto& [mask, support] : memo) {
    if (mask == x) return support;
  }
  auto remember = [&memo, x](std::optional<std::int64_t> v) {
    memo.emplace_back(x, v);
    return v;
  };
  if (x == 0) return remember(num_baskets_ >= min_support_
                                  ? std::optional<std::int64_t>(num_baskets_)
                                  : std::nullopt);
  for (const CountedItemset& s : ndi_) {
    if (s.items == x) return remember(s.support);
  }
  // All proper subsets must be frequent with known supports; otherwise x
  // is infrequent by monotonicity.
  bool subsets_ok = true;
  ForEachBit(x, [&](int bit) {
    if (!subsets_ok) return;
    std::optional<std::int64_t> sub = SupportOf(x & ~(Mask{1} << bit), memo);
    if (!sub.has_value() || *sub < min_support_) subsets_ok = false;
  });
  if (!subsets_ok) return remember(std::nullopt);

  Result<SupportBounds> bounds = NdiBounds(x, num_baskets_, [&](Mask m) {
    return *SupportOf(m, memo);  // Proper subsets: known by the check above.
  });
  if (!bounds.ok()) return remember(std::nullopt);
  if (bounds->Derivable()) return remember(bounds->lower);
  // Non-derivable and not stored: not a frequent set.
  return remember(std::nullopt);
}

DerivedSupport NdiRepresentation::Derive(const ItemSet& x) const {
  std::vector<std::pair<Mask, std::optional<std::int64_t>>> memo;
  std::optional<std::int64_t> support = SupportOf(x.bits(), memo);
  DerivedSupport out;
  if (support.has_value()) {
    out.frequent = *support >= min_support_;
    out.support = support;
  } else {
    out.frequent = false;
  }
  return out;
}

}  // namespace diffc
