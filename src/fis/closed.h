#ifndef DIFFC_FIS_CLOSED_H_
#define DIFFC_FIS_CLOSED_H_

#include <vector>

#include "fis/apriori.h"
#include "fis/basket.h"
#include "fis/concise.h"
#include "util/status.h"

namespace diffc {

/// Closed and maximal frequent itemsets — the other classical concise
/// representations the disjunctive-free line of work (Section 6.1.1) is
/// compared against.
///
/// `X` is *closed* when no proper superset has the same support;
/// equivalently `X` equals its closure `∩ {baskets ⊇ X}`. Closed frequent
/// itemsets determine the support of every frequent itemset
/// (`s(X) = max{s(C) : C closed, C ⊇ X}`); maximal frequent itemsets
/// determine frequency status only.

/// The closure of `x`: the intersection of all baskets containing `x`
/// (and the full universe when none does).
ItemSet BasketClosure(const BasketList& b, const ItemSet& x);

/// All closed frequent itemsets with supports, by (size, mask). Computed
/// from the frequent sets of an Apriori run.
Result<std::vector<CountedItemset>> ClosedFrequentItemsets(const BasketList& b,
                                                           std::int64_t min_support);

/// All maximal frequent itemsets with supports, by (size, mask).
Result<std::vector<CountedItemset>> MaximalFrequentItemsets(const BasketList& b,
                                                            std::int64_t min_support);

/// Support reconstruction from the closed representation:
/// frequency status of any itemset, with the exact support of frequent
/// ones (`s(X) = max` over enclosing closed sets).
DerivedSupport DeriveFromClosed(const std::vector<CountedItemset>& closed,
                                std::int64_t min_support, const ItemSet& x);

}  // namespace diffc

#endif  // DIFFC_FIS_CLOSED_H_
