#include "fis/induce.h"

namespace diffc {

bool IsSupportFunction(const SetFunction<std::int64_t>& f) {
  SetFunction<std::int64_t> density = Density(f);
  for (Mask m = 0; m < density.size(); ++m) {
    if (density.at(m) < 0) return false;
  }
  return true;
}

Result<BasketList> InduceBaskets(const SetFunction<std::int64_t>& f,
                                 std::int64_t max_baskets) {
  SetFunction<std::int64_t> density = Density(f);
  std::int64_t total = 0;
  for (Mask m = 0; m < density.size(); ++m) {
    if (density.at(m) < 0) {
      return Status::InvalidArgument("not a support function: d_f < 0 somewhere");
    }
    total += density.at(m);
    if (total > max_baskets) {
      return Status::ResourceExhausted("induced basket list exceeds " +
                                       std::to_string(max_baskets) + " baskets");
    }
  }
  std::vector<Mask> baskets;
  baskets.reserve(total);
  for (Mask m = 0; m < density.size(); ++m) {
    for (std::int64_t k = 0; k < density.at(m); ++k) baskets.push_back(m);
  }
  return BasketList::Make(f.n(), std::move(baskets));
}

}  // namespace diffc
