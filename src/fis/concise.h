#ifndef DIFFC_FIS_CONCISE_H_
#define DIFFC_FIS_CONCISE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "fis/basket.h"
#include "fis/apriori.h"
#include "fis/disjunctive.h"
#include "util/status.h"

namespace diffc {

/// Parameters of the disjunctive-free concise representation.
struct ConciseOptions {
  /// Frequency threshold κ (>= 1).
  std::int64_t min_support = 1;
  /// Maximum size of the alternative set in disjunctive rules: 2 recovers
  /// Bykowski–Rigotti disjunctive-free sets; larger values the
  /// Kryszkiewicz–Gajek generalized disjunction-free generators. 0 turns
  /// rule detection off (the representation degenerates to plain Apriori).
  int rule_arity = 2;
};

/// What the representation can say about an itemset's support.
struct DerivedSupport {
  /// Frequency status (always determined).
  bool frequent = false;
  /// Exact support when derivable: stored, or reconstructed through
  /// disjunctive rules. Absent only for infrequent sets reached through an
  /// infrequent border set (the representation does not retain their
  /// counts, matching Bykowski–Rigotti).
  std::optional<std::int64_t> support;
};

/// The concise representation `FDFree(B, κ) ∪ Bd⁻(B, κ)` of
/// Bykowski–Rigotti (Section 6.1.1), built level-wise like Apriori but
/// additionally pruning *disjunctive* itemsets — sets whose support is
/// derivable, via a satisfied disjunctive rule, from subsets' supports.
///
/// Rule detection uses the paper's theory directly: a candidate `X` is
/// disjunctive through `R ⊆ X` iff the support function satisfies the
/// differential constraint `(X∖R) -> {{y}|y∈R}`, iff (support functions
/// being frequency functions, Section 6) the differential
/// `D^R̄_{s_B}(X∖R) = Σ_{T⊆R} (-1)^{|T|} s_B(X∖(R∖T))` vanishes — an
/// inclusion–exclusion over already-counted subsets, no basket scan.
class ConciseRepresentation {
 public:
  /// Builds the representation. Works over up to 64 items; only counts
  /// candidates whose proper subsets are all frequent and disjunctive-free.
  static Result<ConciseRepresentation> Build(const BasketList& b,
                                             const ConciseOptions& options);

  /// Frequent disjunctive-free sets with supports, by (size, mask).
  const std::vector<CountedItemset>& fdfree() const { return fdfree_; }
  /// The border Bd⁻: minimal sets that are infrequent or disjunctive, with
  /// supports, by (size, mask).
  const std::vector<CountedItemset>& border() const { return border_; }
  /// The disjunctive rules discovered for the border's disjunctive sets.
  const std::vector<SingletonDisjunctiveRule>& rules() const { return rules_; }
  /// Number of supports counted against the baskets during construction.
  std::uint64_t candidates_counted() const { return candidates_counted_; }
  /// Total stored sets (|FDFree| + |Bd⁻|) — the representation size
  /// compared against the number of frequent itemsets in experiment E6.
  std::size_t size() const { return fdfree_.size() + border_.size(); }

  /// Determines the frequency status of an arbitrary itemset, and its
  /// exact support whenever derivable, using only the stored sets and
  /// rules (no access to the baskets). The reconstruction recursion
  /// follows `s(X) = Σ_{∅≠T⊆R} (-1)^{|T|+1} s(X∖T)` for an applicable rule
  /// `(Z ⇒ R)` with `Z ∪ R ⊆ X`.
  DerivedSupport Derive(const ItemSet& x) const;

 private:
  std::optional<std::int64_t> DeriveExact(
      Mask x, std::vector<std::pair<Mask, std::int64_t>>& memo) const;

  std::vector<CountedItemset> fdfree_;
  std::vector<CountedItemset> border_;
  std::vector<SingletonDisjunctiveRule> rules_;
  std::uint64_t candidates_counted_ = 0;
  std::int64_t min_support_ = 1;
};

}  // namespace diffc

#endif  // DIFFC_FIS_CONCISE_H_
