#ifndef DIFFC_FIS_IO_H_
#define DIFFC_FIS_IO_H_

#include <string>

#include "fis/basket.h"
#include "util/status.h"

namespace diffc {

/// Plain-text basket files, for interoperability with the classic FIMI
/// transaction format:
///
///   # comment lines start with '#'
///   items 12          <- header: universe size
///   0 3 7             <- one basket per line, space-separated item ids
///   2
///   -                 <- "-" marks an empty basket; blank lines are skipped
///
/// Item ids must lie in [0, items).

/// Writes `b` to `path`. Overwrites an existing file.
Status SaveBaskets(const BasketList& b, const std::string& path);

/// Reads a basket file written by `SaveBaskets` (or by hand).
Result<BasketList> LoadBaskets(const std::string& path);

/// Serializes to the text format in memory (used by SaveBaskets).
std::string BasketsToText(const BasketList& b);

/// Parses the text format (used by LoadBaskets).
Result<BasketList> BasketsFromText(const std::string& text);

}  // namespace diffc

#endif  // DIFFC_FIS_IO_H_
