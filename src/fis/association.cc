#include "fis/association.h"

#include <cstdio>
#include <unordered_map>

namespace diffc {

std::string AssociationRule::ToString(const Universe& u) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "  (sup=%lld, conf=%.3f)",
                static_cast<long long>(support), confidence);
  return u.FormatSet(lhs) + " => " + u.FormatSet(rhs) + buf;
}

Result<std::vector<AssociationRule>> GenerateAssociationRules(const AprioriResult& apriori,
                                                              double min_confidence) {
  if (min_confidence <= 0.0 || min_confidence > 1.0) {
    return Status::InvalidArgument("min_confidence must be in (0, 1]");
  }
  std::unordered_map<Mask, std::int64_t> supports;
  supports.reserve(apriori.frequent.size() * 2);
  for (const CountedItemset& s : apriori.frequent) supports.emplace(s.items, s.support);

  std::vector<AssociationRule> rules;
  for (const CountedItemset& s : apriori.frequent) {
    if (Popcount(s.items) < 2) continue;
    ForEachSubset(s.items, [&](Mask lhs) {
      if (lhs == 0 || lhs == s.items) return;
      // Every subset of a frequent itemset is frequent, so its support is
      // available.
      const std::int64_t lhs_support = supports.at(lhs);
      const double confidence =
          static_cast<double>(s.support) / static_cast<double>(lhs_support);
      if (confidence + 1e-12 >= min_confidence) {
        AssociationRule rule;
        rule.lhs = lhs;
        rule.rhs = s.items & ~lhs;
        rule.support = s.support;
        rule.confidence = s.support == lhs_support ? 1.0 : confidence;
        rules.push_back(rule);
      }
    });
  }
  return rules;
}

Result<std::vector<AssociationRule>> GeneratePureRules(const AprioriResult& apriori) {
  Result<std::vector<AssociationRule>> all = GenerateAssociationRules(apriori, 1.0);
  if (!all.ok()) return all.status();
  std::vector<AssociationRule> pure;
  for (const AssociationRule& r : *all) {
    if (r.IsPure()) pure.push_back(r);
  }
  return pure;
}

}  // namespace diffc
