#include "fis/frequency.h"

#include <numeric>

#include "core/closure.h"

namespace diffc {

bool SatisfiesFrequencyConstraint(const BasketList& b, const FrequencyConstraint& c) {
  const std::int64_t s = b.SupportCount(c.itemset);
  if (s < c.lo) return false;
  if (c.hi.has_value() && s > *c.hi) return false;
  return true;
}

std::vector<FrequencyConstraint> ExactConstraintsOf(const BasketList& b,
                                                    const std::vector<ItemSet>& itemsets) {
  std::vector<FrequencyConstraint> out;
  out.reserve(itemsets.size());
  for (const ItemSet& x : itemsets) {
    const std::int64_t s = b.SupportCount(x);
    out.push_back({x, s, s});
  }
  return out;
}

namespace {

// The density variables that differential constraints leave alive, and
// the LP rows of the frequency constraints over them.
struct DensityLp {
  std::vector<Mask> live;  // Variable index -> subset.
  LpProblem problem;
};

Result<DensityLp> BuildLp(int n, const std::vector<FrequencyConstraint>& frequency,
                          const ConstraintSet& differential, int max_bits) {
  if (n > max_bits) {
    return Status::ResourceExhausted("density LP over " + std::to_string(n) +
                                     " items (2^n variables)");
  }
  DensityLp lp;
  const Mask full = FullMask(n);
  for (Mask u = 0;; ++u) {
    if (!InClosureLattice(differential, ItemSet(u))) lp.live.push_back(u);
    if (u == full) break;
  }
  lp.problem.num_vars = static_cast<int>(lp.live.size());
  lp.problem.objective.assign(lp.problem.num_vars, Rational(0));

  auto support_row = [&](const ItemSet& x) {
    std::vector<Rational> coeffs(lp.problem.num_vars);
    for (int j = 0; j < lp.problem.num_vars; ++j) {
      if (IsSubset(x.bits(), lp.live[j])) coeffs[j] = Rational(1);
    }
    return coeffs;
  };

  for (const FrequencyConstraint& c : frequency) {
    if (!IsSubset(c.itemset.bits(), full)) {
      return Status::InvalidArgument("frequency constraint outside the universe");
    }
    if (c.hi.has_value() && *c.hi < c.lo) {
      return Status::InvalidArgument("frequency constraint with hi < lo");
    }
    if (c.lo > 0) {
      lp.problem.constraints.push_back(
          {support_row(c.itemset), LpSense::kGe, Rational(c.lo)});
    }
    if (c.hi.has_value()) {
      lp.problem.constraints.push_back(
          {support_row(c.itemset), LpSense::kLe, Rational(*c.hi)});
    }
  }
  return lp;
}

}  // namespace

Result<FrequencyConsistency> CheckFrequencyConsistency(
    int n, const std::vector<FrequencyConstraint>& frequency,
    const ConstraintSet& differential, int max_bits) {
  Result<DensityLp> lp = BuildLp(n, frequency, differential, max_bits);
  if (!lp.ok()) return lp.status();
  Result<LpSolution> solution = SolveLp(lp->problem);
  if (!solution.ok()) return solution.status();

  FrequencyConsistency out;
  out.consistent = solution->outcome != LpOutcome::kInfeasible;
  if (!out.consistent) return out;

  // Scale the rational vertex to an integer density -> basket list.
  std::int64_t scale = 1;
  for (const Rational& v : solution->values) {
    scale = std::lcm(scale, v.den());
  }
  std::vector<Mask> baskets;
  for (std::size_t j = 0; j < solution->values.size(); ++j) {
    const Rational scaled = solution->values[j] * Rational(scale);
    for (std::int64_t k = 0; k < scaled.num(); ++k) {
      baskets.push_back(lp->live[j]);
    }
  }
  Result<BasketList> witness = BasketList::Make(n, std::move(baskets));
  if (!witness.ok()) return witness.status();
  out.scaling = scale;
  // Only expose the witness when it satisfies the stated bounds verbatim
  // (always true when no scaling was needed; two-sided bounds may break
  // under scaling).
  bool verbatim = true;
  for (const FrequencyConstraint& c : frequency) {
    if (!SatisfiesFrequencyConstraint(*witness, c)) {
      verbatim = false;
      break;
    }
  }
  if (verbatim) out.witness = *std::move(witness);
  return out;
}

Result<SupportInterval> ImpliedSupportInterval(
    int n, const std::vector<FrequencyConstraint>& frequency,
    const ConstraintSet& differential, const ItemSet& target, int max_bits) {
  Result<DensityLp> lp = BuildLp(n, frequency, differential, max_bits);
  if (!lp.ok()) return lp.status();

  // Objective: s(target) over the live densities.
  for (int j = 0; j < lp->problem.num_vars; ++j) {
    lp->problem.objective[j] =
        IsSubset(target.bits(), lp->live[j]) ? Rational(1) : Rational(0);
  }

  Result<LpSolution> max_solution = SolveLp(lp->problem);
  if (!max_solution.ok()) return max_solution.status();
  if (max_solution->outcome == LpOutcome::kInfeasible) {
    return Status::FailedPrecondition("constraints are inconsistent");
  }

  for (Rational& c : lp->problem.objective) c = -c;
  Result<LpSolution> min_solution = SolveLp(lp->problem);
  if (!min_solution.ok()) return min_solution.status();
  if (min_solution->outcome == LpOutcome::kUnbounded) {
    return Status::Internal("support cannot be unbounded below");
  }

  SupportInterval interval;
  interval.lo = -min_solution->objective_value;
  if (max_solution->outcome == LpOutcome::kOptimal) {
    interval.hi = max_solution->objective_value;
  }
  return interval;
}

}  // namespace diffc
