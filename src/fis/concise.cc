#include "fis/concise.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace diffc {

namespace {

bool BySizeThenMask(const CountedItemset& a, const CountedItemset& b) {
  if (Popcount(a.items) != Popcount(b.items)) return Popcount(a.items) < Popcount(b.items);
  return a.items < b.items;
}

}  // namespace

Result<ConciseRepresentation> ConciseRepresentation::Build(const BasketList& b,
                                                           const ConciseOptions& options) {
  if (options.min_support < 1) {
    return Status::InvalidArgument("concise representation requires min_support >= 1");
  }
  if (options.rule_arity < 0) {
    return Status::InvalidArgument("rule_arity must be nonnegative");
  }
  ConciseRepresentation rep;
  rep.min_support_ = options.min_support;

  // Supports of every counted set (FDFree and border alike), used for the
  // inclusion–exclusion rule test.
  std::unordered_map<Mask, std::int64_t> supports;

  // Level 0: the empty set.
  const std::int64_t total = b.size();
  ++rep.candidates_counted_;
  supports.emplace(0, total);
  if (total < options.min_support) {
    rep.border_.push_back({0, total});
    return rep;
  }
  rep.fdfree_.push_back({0, total});

  std::vector<Mask> current_level{0};
  std::unordered_set<Mask> fdfree_prev{0};

  while (!current_level.empty()) {
    // Candidates: extend by a strictly larger item; all proper max-size
    // subsets must be frequent disjunctive-free.
    std::vector<Mask> candidates;
    for (Mask base : current_level) {
      const int start = base == 0 ? 0 : 64 - std::countl_zero(base);
      for (int i = start; i < b.num_items(); ++i) {
        Mask candidate = base | (Mask{1} << i);
        bool all_in = true;
        ForEachBit(candidate, [&](int bit) {
          if (!fdfree_prev.count(candidate & ~(Mask{1} << bit))) all_in = false;
        });
        if (all_in) candidates.push_back(candidate);
      }
    }
    if (candidates.empty()) break;

    // One counting pass for the level.
    std::unordered_map<Mask, std::int64_t> counts;
    for (Mask c : candidates) counts.emplace(c, 0);
    for (Mask basket : b.baskets()) {
      for (Mask c : candidates) {
        if (IsSubset(c, basket)) ++counts[c];
      }
    }
    rep.candidates_counted_ += candidates.size();

    std::sort(candidates.begin(), candidates.end());
    std::vector<Mask> next_level;
    std::unordered_set<Mask> fdfree_now;
    for (Mask x : candidates) {
      const std::int64_t support = counts[x];
      supports.emplace(x, support);
      if (support < options.min_support) {
        rep.border_.push_back({x, support});
        continue;
      }
      // Disjunctive test: some ∅ ≠ R ⊆ X with |R| <= arity and
      // Σ_{T⊆R} (-1)^{|T|} s(X∖(R∖T)) = 0. All needed supports are stored
      // (proper subsets of X are FDFree; X itself was just counted).
      Mask found_rule = 0;
      ForEachSubset(x, [&](Mask r) {
        if (found_rule != 0 || r == 0 || Popcount(r) > options.rule_arity) return;
        std::int64_t differential = 0;
        ForEachSubset(r, [&](Mask t) {
          // Term for T: (-1)^{|T|} s((X∖R) ∪ T) = (-1)^{|T|} s(X∖(R∖T)).
          const std::int64_t s = supports.at((x & ~r) | t);
          differential += Popcount(t) % 2 == 0 ? s : -s;
        });
        if (differential == 0) found_rule = r;
      });
      if (found_rule != 0) {
        rep.border_.push_back({x, support});
        rep.rules_.push_back({x & ~found_rule, found_rule});
        continue;
      }
      rep.fdfree_.push_back({x, support});
      next_level.push_back(x);
      fdfree_now.insert(x);
    }
    // Later levels need all FDFree sets of smaller sizes for the subset
    // check; merge rather than replace.
    for (Mask m : fdfree_prev) fdfree_now.insert(m);
    current_level = std::move(next_level);
    fdfree_prev = std::move(fdfree_now);
  }

  std::sort(rep.fdfree_.begin(), rep.fdfree_.end(), BySizeThenMask);
  std::sort(rep.border_.begin(), rep.border_.end(), BySizeThenMask);
  return rep;
}

std::optional<std::int64_t> ConciseRepresentation::DeriveExact(
    Mask x, std::vector<std::pair<Mask, std::int64_t>>& memo) const {
  for (const auto& [mask, support] : memo) {
    if (mask == x) return support;
  }
  for (const CountedItemset& s : fdfree_) {
    if (s.items == x) {
      memo.emplace_back(x, s.support);
      return s.support;
    }
  }
  for (const CountedItemset& s : border_) {
    if (s.items == x) {
      memo.emplace_back(x, s.support);
      return s.support;
    }
  }
  for (const SingletonDisjunctiveRule& rule : rules_) {
    if (!IsSubset(rule.lhs | rule.rhs_items, x)) continue;
    // s(X) = Σ_{∅≠T⊆R} (-1)^{|T|+1} s(X∖T): solve the vanishing
    // differential for the T = ∅ ... T = R telescope.
    std::int64_t acc = 0;
    bool ok = true;
    ForEachSubset(rule.rhs_items, [&](Mask t) {
      if (!ok || t == rule.rhs_items) return;  // T ⊊ R terms only.
      std::optional<std::int64_t> sub = DeriveExact(x & ~(rule.rhs_items & ~t), memo);
      if (!sub.has_value()) {
        ok = false;
        return;
      }
      // Solved form: s(X) = (-1)^{|R|+1} Σ_{T⊊R} (-1)^{|T|} s(X∖(R∖T)).
      acc += Popcount(t) % 2 == 0 ? *sub : -*sub;
    });
    if (!ok) continue;
    std::int64_t support = Popcount(rule.rhs_items) % 2 == 0 ? -acc : acc;
    memo.emplace_back(x, support);
    return support;
  }
  return std::nullopt;
}

DerivedSupport ConciseRepresentation::Derive(const ItemSet& x) const {
  DerivedSupport out;
  // An infrequent border subset forces infrequency (Apriori monotonicity);
  // its superset supports are not retained.
  for (const CountedItemset& s : border_) {
    if (s.support < min_support_ && IsSubset(s.items, x.bits())) {
      if (s.items == x.bits()) out.support = s.support;  // Stored exactly.
      out.frequent = false;
      return out;
    }
  }
  std::vector<std::pair<Mask, std::int64_t>> memo;
  std::optional<std::int64_t> support = DeriveExact(x.bits(), memo);
  if (support.has_value()) {
    out.frequent = *support >= min_support_;
    out.support = support;
  }
  return out;
}

}  // namespace diffc
