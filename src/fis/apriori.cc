#include "fis/apriori.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "fis/support.h"

namespace diffc {

namespace {

bool AllSubsetsFrequent(Mask candidate, const std::unordered_set<Mask>& frequent_prev) {
  bool ok = true;
  ForEachBit(candidate, [&](int b) {
    if (!frequent_prev.count(candidate & ~(Mask{1} << b))) ok = false;
  });
  return ok;
}

}  // namespace

Result<AprioriResult> Apriori(const BasketList& b, std::int64_t min_support) {
  if (min_support < 1) {
    return Status::InvalidArgument("Apriori requires min_support >= 1");
  }
  AprioriResult result;

  // Level 0: the empty itemset, supported by every basket.
  const std::int64_t total = b.size();
  ++result.candidates_counted;
  if (total < min_support) {
    result.negative_border.push_back({0, total});
    return result;
  }
  result.frequent.push_back({0, total});

  // Level 1: count all single items in one scan.
  std::vector<std::int64_t> item_counts(b.num_items(), 0);
  for (Mask basket : b.baskets()) {
    ForEachBit(basket, [&](int i) { ++item_counts[i]; });
  }
  std::vector<Mask> current_level;
  std::unordered_set<Mask> frequent_prev;
  for (int i = 0; i < b.num_items(); ++i) {
    Mask item = Mask{1} << i;
    ++result.candidates_counted;
    if (item_counts[i] >= min_support) {
      result.frequent.push_back({item, item_counts[i]});
      current_level.push_back(item);
      frequent_prev.insert(item);
    } else {
      result.negative_border.push_back({item, item_counts[i]});
    }
  }

  // Levels k >= 2.
  while (!current_level.empty()) {
    // Candidate generation: extend each frequent set by a strictly larger
    // item, then prune candidates with an infrequent (k-1)-subset. Every
    // set whose proper subsets are all frequent is generated exactly once
    // (from itself minus its largest item).
    std::vector<Mask> candidates;
    for (Mask base : current_level) {
      const int max_item = 63 - std::countl_zero(base);
      for (int i = max_item + 1; i < b.num_items(); ++i) {
        Mask candidate = base | (Mask{1} << i);
        if (AllSubsetsFrequent(candidate, frequent_prev)) candidates.push_back(candidate);
      }
    }
    if (candidates.empty()) break;

    // Counting pass.
    std::unordered_map<Mask, std::int64_t> counts;
    counts.reserve(candidates.size() * 2);
    for (Mask c : candidates) counts.emplace(c, 0);
    for (Mask basket : b.baskets()) {
      for (Mask c : candidates) {
        if (IsSubset(c, basket)) ++counts[c];
      }
    }
    result.candidates_counted += candidates.size();

    std::sort(candidates.begin(), candidates.end());
    std::vector<Mask> next_level;
    std::unordered_set<Mask> frequent_now;
    for (Mask c : candidates) {
      std::int64_t support = counts[c];
      if (support >= min_support) {
        result.frequent.push_back({c, support});
        next_level.push_back(c);
        frequent_now.insert(c);
      } else {
        result.negative_border.push_back({c, support});
      }
    }
    current_level = std::move(next_level);
    frequent_prev = std::move(frequent_now);
  }

  auto by_size_then_mask = [](const CountedItemset& a, const CountedItemset& b2) {
    if (Popcount(a.items) != Popcount(b2.items)) {
      return Popcount(a.items) < Popcount(b2.items);
    }
    return a.items < b2.items;
  };
  std::sort(result.frequent.begin(), result.frequent.end(), by_size_then_mask);
  std::sort(result.negative_border.begin(), result.negative_border.end(),
            by_size_then_mask);
  return result;
}

Result<std::vector<CountedItemset>> FrequentItemsetsExhaustive(const BasketList& b,
                                                               std::int64_t min_support) {
  Result<SetFunction<std::int64_t>> support = SupportFunction(b);
  if (!support.ok()) return support.status();
  std::vector<CountedItemset> out;
  const Mask full = FullMask(b.num_items());
  for (Mask m = 0;; ++m) {
    if (support->at(m) >= min_support) out.push_back({m, support->at(m)});
    if (m == full) break;
  }
  std::sort(out.begin(), out.end(), [](const CountedItemset& a, const CountedItemset& b2) {
    if (Popcount(a.items) != Popcount(b2.items)) {
      return Popcount(a.items) < Popcount(b2.items);
    }
    return a.items < b2.items;
  });
  return out;
}

}  // namespace diffc
