#ifndef DIFFC_FIS_SUPPORT_H_
#define DIFFC_FIS_SUPPORT_H_

#include <cstdint>

#include "fis/basket.h"
#include "lattice/mobius.h"

namespace diffc {

/// The multiplicity function `d^B(X) = |{i : B[i] = X}|` (Section 6.1) —
/// the density of the support function (`d_{s_B} = d^B`, Remark 2.3
/// applied to baskets). Requires `num_items <= kMaxSetFunctionBits`.
Result<SetFunction<std::int64_t>> BasketMultiplicity(const BasketList& b);

/// The full support function `s_B` over every itemset, computed as the
/// superset-zeta transform of the multiplicity in O(n·2^n + |B|) — exactly
/// equation (5): `s_B(X) = Σ_{X ⊆ U} d^B(U)`.
Result<SetFunction<std::int64_t>> SupportFunction(const BasketList& b);

}  // namespace diffc

#endif  // DIFFC_FIS_SUPPORT_H_
