#ifndef DIFFC_FIS_INDUCE_H_
#define DIFFC_FIS_INDUCE_H_

#include <cstdint>

#include "fis/basket.h"
#include "lattice/mobius.h"
#include "util/status.h"

namespace diffc {

/// The basket-space induction of Section 6: "it is possible to induce a
/// basket space from each of these functions, and vice versa." A function
/// `f : 2^S -> Z` is the support function of some basket list iff its
/// density is nonnegative (then the density *is* the multiplicity
/// function `d^B`).

/// True iff `f` is the support function of some basket list: integer
/// values with nonnegative density.
bool IsSupportFunction(const SetFunction<std::int64_t>& f);

/// The unique basket list (up to order) whose support function is `f`:
/// basket `U` repeated `d_f(U)` times, ordered by mask. InvalidArgument
/// when the density takes a negative value; ResourceExhausted when the
/// total basket count exceeds `max_baskets`.
Result<BasketList> InduceBaskets(const SetFunction<std::int64_t>& f,
                                 std::int64_t max_baskets = 10'000'000);

}  // namespace diffc

#endif  // DIFFC_FIS_INDUCE_H_
