#ifndef DIFFC_FIS_GENERATOR_H_
#define DIFFC_FIS_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "fis/basket.h"
#include "util/random.h"

namespace diffc {

/// Configuration of the synthetic basket generator (the substitution for
/// the retail traces used by the concise-representation literature; see
/// DESIGN.md §5). Baskets are built IBM-Quest style: a pool of random
/// patterns is sampled into each basket, plus independent noise items.
struct BasketGenConfig {
  int num_items = 16;
  int num_baskets = 1000;
  /// Number of patterns in the pool.
  int num_patterns = 6;
  /// Items per pattern.
  int pattern_size = 4;
  /// Probability that a given pattern is included in a basket.
  double pattern_prob = 0.3;
  /// Independent probability of each noise item.
  double noise_density = 0.05;
  std::uint64_t seed = 1;
};

/// Generates a synthetic basket list from `config`.
Result<BasketList> GenerateBaskets(const BasketGenConfig& config);

/// A disjunctive rule planted into generated data: whenever `trigger` is
/// present in a basket, at least one of `alternatives` is forced in, so
/// the list satisfies `{trigger} ⇒disj {{a} | a ∈ alternatives}`.
struct PlantedRule {
  int trigger = 0;
  ItemSet alternatives;
};

/// Generates baskets and then enforces `rules`, adding one random
/// alternative to any basket violating a rule (rules are re-applied until
/// all hold, so later rules cannot break earlier ones). Planted rules make
/// supersets of `{trigger} ∪ alternatives` disjunctive itemsets, shrinking
/// the disjunctive-free representation — the knob for experiment E6.
Result<BasketList> GenerateBasketsWithRules(const BasketGenConfig& config,
                                            const std::vector<PlantedRule>& rules);

}  // namespace diffc

#endif  // DIFFC_FIS_GENERATOR_H_
