#ifndef DIFFC_FIS_BASKET_H_
#define DIFFC_FIS_BASKET_H_

#include <cstdint>
#include <vector>

#include "lattice/itemset.h"
#include "util/status.h"

namespace diffc {

/// A list of baskets `B` over a set of items (Section 6.1): the input of
/// the frequent itemset problem. The same basket may occur multiple times
/// (it is a list, not a set).
class BasketList {
 public:
  /// Builds a basket list; every basket must be a subset of the
  /// `num_items`-item universe, `0 <= num_items <= 64`.
  static Result<BasketList> Make(int num_items, std::vector<Mask> baskets);

  /// Number of items in the universe.
  int num_items() const { return num_items_; }
  /// Number of baskets.
  int size() const { return static_cast<int>(baskets_.size()); }
  /// Basket `i` as a bitmask.
  Mask basket(int i) const { return baskets_[i]; }
  /// All baskets.
  const std::vector<Mask>& baskets() const { return baskets_; }

  /// The support `s_B(X) = |{i : X ⊆ B[i]}|`, by linear scan.
  std::int64_t SupportCount(const ItemSet& x) const;

  /// The cover `B(X) = {i : X ⊆ B[i]}` as basket indices.
  std::vector<int> Cover(const ItemSet& x) const;

 private:
  BasketList(int num_items, std::vector<Mask> baskets)
      : num_items_(num_items), baskets_(std::move(baskets)) {}

  int num_items_;
  std::vector<Mask> baskets_;
};

}  // namespace diffc

#endif  // DIFFC_FIS_BASKET_H_
