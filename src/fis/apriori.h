#ifndef DIFFC_FIS_APRIORI_H_
#define DIFFC_FIS_APRIORI_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "fis/basket.h"
#include "util/status.h"

namespace diffc {

/// An itemset together with its support count.
struct CountedItemset {
  Mask items = 0;
  std::int64_t support = 0;

  friend bool operator==(const CountedItemset& a, const CountedItemset& b) {
    return a.items == b.items && a.support == b.support;
  }
};

/// Output of the Apriori computation.
struct AprioriResult {
  /// All frequent itemsets (support >= min_support) with supports, ordered
  /// by (cardinality, mask).
  std::vector<CountedItemset> frequent;
  /// The negative border Bd⁻: minimal infrequent itemsets (all proper
  /// subsets frequent), with their supports, ordered by (cardinality, mask).
  std::vector<CountedItemset> negative_border;
  /// Number of candidate itemsets whose support was counted against the
  /// basket list — the work measure the concise representations reduce.
  std::uint64_t candidates_counted = 0;
};

/// The level-wise Apriori algorithm (Agrawal–Srikant) with negative-border
/// collection (Mannila–Toivonen): generates size-k candidates from
/// frequent (k-1)-sets, prunes candidates with an infrequent subset, and
/// counts the survivors against the baskets. Requires min_support >= 1.
/// Works for any universe up to 64 items (no dense tables).
Result<AprioriResult> Apriori(const BasketList& b, std::int64_t min_support);

/// Exhaustive reference: all frequent itemsets by enumerating 2^n sets
/// over the materialized support function (num_items <=
/// kMaxSetFunctionBits). Used to validate Apriori and as the baseline in
/// experiment E6.
Result<std::vector<CountedItemset>> FrequentItemsetsExhaustive(const BasketList& b,
                                                               std::int64_t min_support);

}  // namespace diffc

#endif  // DIFFC_FIS_APRIORI_H_
