#include "fis/generator.h"

namespace diffc {

Result<BasketList> GenerateBaskets(const BasketGenConfig& config) {
  if (config.num_items < 1 || config.num_items > 64) {
    return Status::InvalidArgument("generator needs 1..64 items");
  }
  if (config.num_baskets < 0 || config.num_patterns < 0) {
    return Status::InvalidArgument("negative generator counts");
  }
  Rng rng(config.seed);
  std::vector<Mask> patterns;
  patterns.reserve(config.num_patterns);
  for (int i = 0; i < config.num_patterns; ++i) {
    Mask pattern = 0;
    while (Popcount(pattern) < config.pattern_size) {
      pattern |= Mask{1} << rng.UniformInt(0, config.num_items - 1);
    }
    patterns.push_back(pattern);
  }
  std::vector<Mask> baskets;
  baskets.reserve(config.num_baskets);
  for (int i = 0; i < config.num_baskets; ++i) {
    Mask basket = rng.RandomMask(config.num_items, config.noise_density);
    for (Mask pattern : patterns) {
      if (rng.Bernoulli(config.pattern_prob)) basket |= pattern;
    }
    baskets.push_back(basket);
  }
  return BasketList::Make(config.num_items, std::move(baskets));
}

Result<BasketList> GenerateBasketsWithRules(const BasketGenConfig& config,
                                            const std::vector<PlantedRule>& rules) {
  Result<BasketList> base = GenerateBaskets(config);
  if (!base.ok()) return base.status();
  for (const PlantedRule& rule : rules) {
    if (rule.trigger < 0 || rule.trigger >= config.num_items ||
        rule.alternatives.empty() ||
        !IsSubset(rule.alternatives.bits(), FullMask(config.num_items))) {
      return Status::InvalidArgument("planted rule outside the item universe");
    }
  }
  Rng rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<Mask> baskets = base->baskets();
  bool changed = true;
  while (changed) {
    changed = false;
    for (Mask& basket : baskets) {
      for (const PlantedRule& rule : rules) {
        if (((basket >> rule.trigger) & 1) != 0 &&
            (basket & rule.alternatives.bits()) == 0) {
          // Add one uniformly random alternative item.
          Mask pick = rng.RandomNonemptySubsetOf(rule.alternatives.bits());
          basket |= Mask{1} << LowestBit(pick);
          changed = true;
        }
      }
    }
  }
  return BasketList::Make(config.num_items, std::move(baskets));
}

}  // namespace diffc
