#include "fis/io.h"

#include <fstream>
#include <sstream>

#include "util/failpoint.h"
#include "util/text.h"

namespace diffc {

std::string BasketsToText(const BasketList& b) {
  std::string out = "# diffc basket list\n";
  out += "items " + std::to_string(b.num_items()) + "\n";
  for (Mask basket : b.baskets()) {
    std::string line;
    ForEachBit(basket, [&](int item) {
      if (!line.empty()) line += " ";
      line += std::to_string(item);
    });
    if (line.empty()) line = "-";  // Explicit marker for the empty basket.
    out += line + "\n";
  }
  return out;
}

Result<BasketList> BasketsFromText(const std::string& text) {
  if (DIFFC_FAILPOINT("fis/parse-baskets")) {
    return Status::Internal("failpoint fis/parse-baskets: basket parse failed");
  }
  int num_items = -1;
  std::vector<Mask> baskets;
  for (const std::string& raw : Split(text, '\n')) {
    std::string_view line = Trim(raw);
    if (line.empty() || line.front() == '#') continue;
    if (line.rfind("items", 0) == 0) {
      std::string count(Trim(line.substr(5)));
      try {
        num_items = std::stoi(count);
      } catch (...) {
        return Status::InvalidArgument("bad items header: " + std::string(line));
      }
      continue;
    }
    if (num_items < 0) {
      return Status::InvalidArgument("basket line before 'items N' header");
    }
    if (line == "-") {
      baskets.push_back(0);
      continue;
    }
    Mask basket = 0;
    for (const std::string& token : Split(line, ' ')) {
      std::string_view t = Trim(token);
      if (t.empty()) continue;
      int item;
      try {
        item = std::stoi(std::string(t));
      } catch (...) {
        return Status::InvalidArgument("bad item id: " + std::string(t));
      }
      if (item < 0 || item >= num_items) {
        return Status::OutOfRange("item " + std::to_string(item) +
                                  " outside universe of " + std::to_string(num_items));
      }
      basket |= Mask{1} << item;
    }
    baskets.push_back(basket);
  }
  if (num_items < 0) return Status::InvalidArgument("missing 'items N' header");
  return BasketList::Make(num_items, std::move(baskets));
}

Status SaveBaskets(const BasketList& b, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  out << BasketsToText(b);
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

Result<BasketList> LoadBaskets(const std::string& path) {
  if (DIFFC_FAILPOINT("fis/load-baskets")) {
    return Status::NotFound("failpoint fis/load-baskets: cannot open: " + path);
  }
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return BasketsFromText(buffer.str());
}

}  // namespace diffc
