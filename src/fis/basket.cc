#include "fis/basket.h"

namespace diffc {

Result<BasketList> BasketList::Make(int num_items, std::vector<Mask> baskets) {
  if (num_items < 0 || num_items > 64) {
    return Status::InvalidArgument("basket universe must have 0..64 items");
  }
  const Mask full = FullMask(num_items);
  for (Mask b : baskets) {
    if (!IsSubset(b, full)) {
      return Status::InvalidArgument("basket contains items outside the universe");
    }
  }
  return BasketList(num_items, std::move(baskets));
}

std::int64_t BasketList::SupportCount(const ItemSet& x) const {
  std::int64_t count = 0;
  for (Mask b : baskets_) {
    if (IsSubset(x.bits(), b)) ++count;
  }
  return count;
}

std::vector<int> BasketList::Cover(const ItemSet& x) const {
  std::vector<int> out;
  for (int i = 0; i < size(); ++i) {
    if (IsSubset(x.bits(), baskets_[i])) out.push_back(i);
  }
  return out;
}

}  // namespace diffc
