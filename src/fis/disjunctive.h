#ifndef DIFFC_FIS_DISJUNCTIVE_H_
#define DIFFC_FIS_DISJUNCTIVE_H_

#include <vector>

#include "core/constraint.h"
#include "fis/basket.h"
#include "util/status.h"

namespace diffc {

/// Disjunctive constraints over basket lists (Definition 6.1): `B`
/// satisfies `X ⇒disj Y` iff `B(X) = ∪_{Y∈Y} B(X∪Y)` — every basket
/// containing `X` contains some member of `Y` entirely. By
/// Proposition 6.3 this holds iff the support function `s_B` satisfies the
/// differential constraint `X -> Y` (checked in tests).
/// O(|B| · |Y|).
bool SatisfiesDisjunctive(const BasketList& b, const DifferentialConstraint& c);

/// A disjunctive rule with singleton alternatives: `lhs ⇒disj
/// {{y} | y ∈ rhs_items}` — the form of Bykowski–Rigotti (|rhs| <= 2) and
/// Kryszkiewicz–Gajek (arbitrary |rhs|) rules. Any satisfied nontrivial
/// disjunctive constraint yields a satisfied nontrivial singleton rule
/// over the same items (pick one element outside X per member), so
/// singleton rules decide disjunctive-itemset status.
struct SingletonDisjunctiveRule {
  Mask lhs = 0;
  Mask rhs_items = 0;

  friend bool operator==(const SingletonDisjunctiveRule& a,
                         const SingletonDisjunctiveRule& b) {
    return a.lhs == b.lhs && a.rhs_items == b.rhs_items;
  }
};

/// True iff `b` satisfies the singleton rule.
bool SatisfiesSingletonRule(const BasketList& b, const SingletonDisjunctiveRule& rule);

/// True iff `x` is a disjunctive itemset of `b` (Definition 6.2) with
/// alternative sets of size at most `max_rhs` (2 = Bykowski–Rigotti
/// disjunctive; x.size() = unbounded/generalized): some nonempty `R ⊆ x`
/// with `|R| <= max_rhs` has `(x∖R) ⇒disj R` satisfied. O(2^|x| · |B|);
/// requires |x| <= 24.
Result<bool> IsDisjunctiveItemset(const BasketList& b, const ItemSet& x, int max_rhs);

/// All minimal satisfied singleton rules with `|lhs| <= max_lhs` and
/// `1 <= |rhs| <= max_rhs`, lexicographic by (lhs, rhs). "Minimal": no
/// satisfied rule with subset lhs and subset rhs is reported. Exponential
/// search over the item universe; `max_results` guards the output.
Result<std::vector<SingletonDisjunctiveRule>> MineSingletonRules(
    const BasketList& b, int max_lhs, int max_rhs, std::size_t max_results = 100000);

/// The Σ2 decision of Section 6.1.1: is `x` a disjunctive itemset
/// *according to a constraint set `C`* — does `C` imply some nontrivial
/// constraint `X' -> Y'` with `X ⊇ X' ∪ ∪Y'`? Searches singleton-member
/// candidates (complete, by the projection argument) and decides each
/// implication with the SAT checker: an ∃∀ procedure matching the
/// problem's Σ2 upper bound. Requires |x| <= 20.
Result<bool> IsDisjunctiveForConstraints(int n, const ConstraintSet& c, const ItemSet& x);

}  // namespace diffc

#endif  // DIFFC_FIS_DISJUNCTIVE_H_
