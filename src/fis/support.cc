#include "fis/support.h"

namespace diffc {

Result<SetFunction<std::int64_t>> BasketMultiplicity(const BasketList& b) {
  Result<SetFunction<std::int64_t>> d = SetFunction<std::int64_t>::Make(b.num_items());
  if (!d.ok()) return d.status();
  for (Mask basket : b.baskets()) ++d->at(basket);
  return d;
}

Result<SetFunction<std::int64_t>> SupportFunction(const BasketList& b) {
  Result<SetFunction<std::int64_t>> s = BasketMultiplicity(b);
  if (!s.ok()) return s.status();
  ZetaSupersetInPlace(*s);
  return s;
}

}  // namespace diffc
