#ifndef DIFFC_FIS_NDI_H_
#define DIFFC_FIS_NDI_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "fis/apriori.h"
#include "fis/basket.h"
#include "fis/concise.h"
#include "util/status.h"

namespace diffc {

/// Non-derivable itemsets (Calders–Goethals, PKDD 2002 — cited by the
/// paper as a concise representation the differential theory explains).
///
/// Support functions are frequency functions (Section 6), so *every*
/// differential is nonnegative:
///
///   D^{X∖Y}_{s}(Y) = Σ_{T ⊆ X∖Y} (-1)^{|T|} s(Y ∪ T)  >=  0
///                                              for every Y ⊆ X.
///
/// Isolating the `T = X∖Y` term turns each such inequality into a bound on
/// `s(X)` in terms of supports of proper subsets: a lower bound when
/// `|X∖Y|` is even, an upper bound when odd. `X` is *derivable* when its
/// lower and upper bounds meet — then `s(X)` is known without counting,
/// and the representation stores only non-derivable frequent itemsets.

/// Inclusion–exclusion support bounds for `x` from its proper subsets'
/// supports, supplied by `support_of` (which is only called on proper
/// subsets of `x`). Cost O(3^|x|); requires |x| <= 20.
struct SupportBounds {
  std::int64_t lower = 0;
  std::int64_t upper = 0;

  bool Derivable() const { return lower == upper; }
};
Result<SupportBounds> NdiBounds(Mask x, std::int64_t num_baskets,
                                const std::function<std::int64_t(Mask)>& support_of);

/// The NDI concise representation: the non-derivable frequent itemsets
/// with their supports.
class NdiRepresentation {
 public:
  /// Builds the representation level-wise: candidates whose subsets are
  /// all frequent get their bounds evaluated; only non-derivable ones are
  /// counted against the baskets.
  static Result<NdiRepresentation> Build(const BasketList& b, std::int64_t min_support);

  /// The stored non-derivable frequent itemsets, by (size, mask).
  const std::vector<CountedItemset>& ndi() const { return ndi_; }
  /// Number of supports counted against the baskets.
  std::uint64_t candidates_counted() const { return candidates_counted_; }
  /// Representation size.
  std::size_t size() const { return ndi_.size(); }

  /// Frequency status of an arbitrary itemset, with the exact support for
  /// every frequent itemset, reconstructed from the stored sets through
  /// the deduction bounds (no basket access).
  DerivedSupport Derive(const ItemSet& x) const;

 private:
  // Memoized exact-support reconstruction; nullopt = infrequent with
  // unknown support.
  std::optional<std::int64_t> SupportOf(
      Mask x, std::vector<std::pair<Mask, std::optional<std::int64_t>>>& memo) const;

  std::vector<CountedItemset> ndi_;
  std::uint64_t candidates_counted_ = 0;
  std::int64_t min_support_ = 1;
  std::int64_t num_baskets_ = 0;
};

}  // namespace diffc

#endif  // DIFFC_FIS_NDI_H_
