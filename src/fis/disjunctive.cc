#include "fis/disjunctive.h"

#include <algorithm>

#include "core/implication.h"

namespace diffc {

bool SatisfiesDisjunctive(const BasketList& b, const DifferentialConstraint& c) {
  for (Mask basket : b.baskets()) {
    if (!IsSubset(c.lhs().bits(), basket)) continue;
    bool covered = false;
    for (const ItemSet& member : c.rhs().members()) {
      if (IsSubset(member.bits(), basket)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

bool SatisfiesSingletonRule(const BasketList& b, const SingletonDisjunctiveRule& rule) {
  for (Mask basket : b.baskets()) {
    if (IsSubset(rule.lhs, basket) && (basket & rule.rhs_items) == 0) return false;
  }
  return true;
}

Result<bool> IsDisjunctiveItemset(const BasketList& b, const ItemSet& x, int max_rhs) {
  if (x.size() > 24) {
    return Status::ResourceExhausted("disjunctive-itemset check over " +
                                     std::to_string(x.size()) + " items");
  }
  // By augmentation it suffices to test lhs = x ∖ R for each candidate R
  // (see the header comment of SingletonDisjunctiveRule).
  bool found = false;
  ForEachSubset(x.bits(), [&](Mask r) {
    if (found || r == 0 || Popcount(r) > max_rhs) return;
    if (SatisfiesSingletonRule(b, {x.bits() & ~r, r})) found = true;
  });
  return found;
}

Result<std::vector<SingletonDisjunctiveRule>> MineSingletonRules(const BasketList& b,
                                                                 int max_lhs, int max_rhs,
                                                                 std::size_t max_results) {
  const int n = b.num_items();
  if (n > 24) {
    return Status::ResourceExhausted("rule mining over " + std::to_string(n) + " items");
  }
  std::vector<SingletonDisjunctiveRule> satisfied;
  // Enumerate left-hand sides by increasing size, right-hand sides by
  // increasing size, and keep rules not dominated by an earlier one.
  std::vector<Mask> all_sets;
  for (Mask m = 0; m < (Mask{1} << n); ++m) {
    if (Popcount(m) <= std::max(max_lhs, max_rhs)) all_sets.push_back(m);
  }
  std::sort(all_sets.begin(), all_sets.end(), [](Mask a, Mask b2) {
    if (Popcount(a) != Popcount(b2)) return Popcount(a) < Popcount(b2);
    return a < b2;
  });
  for (Mask lhs : all_sets) {
    if (Popcount(lhs) > max_lhs) continue;
    for (Mask rhs : all_sets) {
      if (rhs == 0 || Popcount(rhs) > max_rhs || (lhs & rhs) != 0) continue;
      bool dominated = false;
      for (const SingletonDisjunctiveRule& prev : satisfied) {
        if (IsSubset(prev.lhs, lhs) && IsSubset(prev.rhs_items, rhs)) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      if (SatisfiesSingletonRule(b, {lhs, rhs})) {
        satisfied.push_back({lhs, rhs});
        if (satisfied.size() > max_results) {
          return Status::ResourceExhausted("more than " + std::to_string(max_results) +
                                           " minimal rules");
        }
      }
    }
  }
  std::sort(satisfied.begin(), satisfied.end(),
            [](const SingletonDisjunctiveRule& a, const SingletonDisjunctiveRule& b2) {
              if (a.lhs != b2.lhs) return a.lhs < b2.lhs;
              return a.rhs_items < b2.rhs_items;
            });
  return satisfied;
}

Result<bool> IsDisjunctiveForConstraints(int n, const ConstraintSet& c, const ItemSet& x) {
  if (x.size() > 20) {
    return Status::ResourceExhausted("Σ2 disjunctive check over " +
                                     std::to_string(x.size()) + " items");
  }
  // ∃ phase: candidate nontrivial constraints (x∖R) -> {{y}|y∈R} with
  // ∅ ≠ R ⊆ x; ∀ phase: C |= candidate via the SAT-based coNP checker.
  Status first_error = Status::Ok();
  bool found = false;
  ForEachSubset(x.bits(), [&](Mask r) {
    if (found || !first_error.ok() || r == 0) return;
    std::vector<ItemSet> members;
    ForEachBit(r, [&](int y) { members.push_back(ItemSet::Singleton(y)); });
    DifferentialConstraint candidate(ItemSet(x.bits() & ~r), SetFamily(std::move(members)));
    Result<ImplicationOutcome> implied = CheckImplicationSat(n, c, candidate);
    if (!implied.ok()) {
      first_error = implied.status();
      return;
    }
    if (implied->implied) found = true;
  });
  if (!first_error.ok()) return first_error;
  return found;
}

}  // namespace diffc
