#ifndef DIFFC_FIS_FREQUENCY_H_
#define DIFFC_FIS_FREQUENCY_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/constraint.h"
#include "fis/basket.h"
#include "math/simplex.h"
#include "util/status.h"

namespace diffc {

/// Frequency constraints (Calders–Paredaens) and their interaction with
/// differential constraints — the paper's closing future-work direction:
/// "constraints on the density functions … would permit a study of the
/// relationship between such constraints and the frequency constraints
/// considered by Calders and Paredaens."
///
/// A frequency constraint bounds a support value: `lo <= s(X) <= hi`.
/// Over the density variables `d(U) >= 0` (support functions are exactly
/// the functions with nonnegative integer densities, Section 6.1) these
/// are linear constraints, and a differential constraint `X -> Y` *fixes
/// densities to zero* on `L(X, Y)`. Rational-relaxation reasoning —
/// consistency and entailed support intervals — is therefore exact linear
/// programming, solved here with the rational simplex substrate.

/// `lo <= s(itemset) <= hi`; omit `hi` for no upper bound.
struct FrequencyConstraint {
  ItemSet itemset;
  std::int64_t lo = 0;
  std::optional<std::int64_t> hi;
};

/// True iff the basket list satisfies the constraint.
bool SatisfiesFrequencyConstraint(const BasketList& b, const FrequencyConstraint& c);

/// The frequency constraints a basket list induces on a collection of
/// itemsets (exact point constraints, `lo = hi = s(X)`), handy for tests
/// and demos.
std::vector<FrequencyConstraint> ExactConstraintsOf(const BasketList& b,
                                                    const std::vector<ItemSet>& itemsets);

/// Result of a consistency query.
struct FrequencyConsistency {
  /// True iff some *fractional* nonnegative density satisfies everything
  /// (rational relaxation of FREQSAT; a necessary condition for a basket
  /// list to exist, exact when a rational witness can be scaled — which
  /// the simplex vertex always can).
  bool consistent = false;
  /// When consistent: a witness basket list obtained by scaling the
  /// rational density vertex to integers. Satisfies every differential
  /// constraint, and every frequency constraint whose bounds scale
  /// (two-sided constraints are only preserved up to the scaling factor —
  /// see `scaling`); present only when scaling preserved all constraints.
  std::optional<BasketList> witness;
  /// The factor the witness was scaled by (1 = witness meets the bounds
  /// verbatim).
  std::int64_t scaling = 1;
};

/// Decides whether the frequency constraints plus the differential
/// constraints are simultaneously satisfiable by a (fractional) support
/// function over `n` items. Differential constraints enter as `d(U) = 0`
/// on their lattice decompositions — i.e. dropped density variables.
/// Requires `n <= max_bits` (default 10; the LP has 2^n variables).
Result<FrequencyConsistency> CheckFrequencyConsistency(
    int n, const std::vector<FrequencyConstraint>& frequency,
    const ConstraintSet& differential = {}, int max_bits = 10);

/// The tightest support interval for `target` entailed by the frequency
/// and differential constraints over fractional support functions:
/// min/max of `s(target)` subject to the constraint polytope. Returns
/// nullopt upper bound when unbounded; FailedPrecondition when the
/// constraints are inconsistent.
struct SupportInterval {
  Rational lo;
  std::optional<Rational> hi;
};
Result<SupportInterval> ImpliedSupportInterval(
    int n, const std::vector<FrequencyConstraint>& frequency,
    const ConstraintSet& differential, const ItemSet& target, int max_bits = 10);

}  // namespace diffc

#endif  // DIFFC_FIS_FREQUENCY_H_
