#ifndef DIFFC_DIFFC_H_
#define DIFFC_DIFFC_H_

/// \file
/// Umbrella header for the diffc library — a complete implementation of
/// "Differential Constraints" (Sayrafi & Van Gucht, PODS 2005): the
/// constraint language and its density semantics, lattice decompositions,
/// the sound & complete inference system with machine-checkable proofs,
/// the propositional translation and coNP decision procedure, the frequent
/// itemset application (disjunctive rules and concise representations),
/// and the relational application (Simpson functions and positive boolean
/// dependencies).

#include "core/armstrong.h"
#include "core/atoms.h"
#include "core/closure.h"
#include "core/constraint.h"
#include "core/counterexample.h"
#include "core/differential_semantics.h"
#include "core/function_ops.h"
#include "core/implication.h"
#include "core/inference.h"
#include "core/parser.h"
#include "ds/belief.h"
#include "engine/caches.h"
#include "engine/implication_engine.h"
#include "engine/worker_pool.h"
#include "fis/apriori.h"
#include "fis/association.h"
#include "fis/basket.h"
#include "fis/closed.h"
#include "fis/concise.h"
#include "fis/disjunctive.h"
#include "fis/generator.h"
#include "fis/frequency.h"
#include "fis/induce.h"
#include "fis/io.h"
#include "fis/ndi.h"
#include "fis/support.h"
#include "lattice/decomposition.h"
#include "math/gauss.h"
#include "math/simplex.h"
#include "obs/event_log.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "lattice/hitting_set.h"
#include "lattice/interval.h"
#include "lattice/itemset.h"
#include "lattice/mobius.h"
#include "lattice/set_family.h"
#include "lattice/universe.h"
#include "prop/cdcl.h"
#include "prop/cnf.h"
#include "prop/dpll.h"
#include "prop/formula.h"
#include "prop/implication_constraint.h"
#include "prop/minterm.h"
#include "prop/tautology.h"
#include "relational/boolean_dependency.h"
#include "relational/distribution.h"
#include "relational/dmvd.h"
#include "relational/entropy.h"
#include "relational/fd.h"
#include "relational/normalization.h"
#include "relational/positive_bool.h"
#include "relational/relation.h"
#include "relational/simpson.h"
#include "util/bitops.h"
#include "util/deadline.h"
#include "util/failpoint.h"
#include "util/random.h"
#include "util/rational.h"
#include "util/status.h"
#include "util/text.h"

#endif  // DIFFC_DIFFC_H_
