#include "util/text.h"

#include <cctype>

namespace diffc {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace diffc
