#include "util/rational.h"

#include <climits>

#include "util/failpoint.h"

namespace diffc {

namespace {

using Int128 = __int128;

// Narrows to int64, flagging values outside the representable range.
std::int64_t CheckedNarrow(Int128 v, bool* overflow) {
  if (v > INT64_MAX || v < INT64_MIN) {
    *overflow = true;
    return 0;
  }
  return static_cast<std::int64_t>(v);
}

// Reduces num/den (den != 0) to lowest terms with a positive denominator.
// Returns false when the reduced result does not fit in 64 bits.
bool Reduce(Int128 num, Int128 den, std::int64_t* out_num, std::int64_t* out_den) {
  if (den < 0) {
    num = -num;
    den = -den;
  }
  Int128 a = num < 0 ? -num : num;
  Int128 b = den;
  while (b != 0) {
    Int128 t = a % b;
    a = b;
    b = t;
  }
  if (a == 0) a = 1;  // num == 0.
  bool overflow = false;
  *out_num = CheckedNarrow(num / a, &overflow);
  *out_den = CheckedNarrow(den / a, &overflow);
  return !overflow;
}

Rational FromParts(Int128 num, Int128 den) {
  // Every arithmetic operator funnels through here, so one fail point
  // covers all overflow-producing paths.
  if (DIFFC_FAILPOINT("rational/overflow")) return Rational::Overflow();
  if (den == 0) return Rational::Overflow();
  std::int64_t n, d;
  if (!Reduce(num, den, &n, &d)) return Rational::Overflow();
  // n/d is already in lowest terms; the constructor's reduction is a no-op.
  return Rational(n, d);
}

}  // namespace

Rational::Rational(std::int64_t num, std::int64_t den) {
  if (den == 0 || !Reduce(num, den, &num_, &den_)) {
    num_ = 0;
    den_ = 0;  // Overflow value.
  }
}

std::string Rational::ToString() const {
  if (Overflowed()) return "overflow";
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Rational Rational::operator+(const Rational& o) const {
  if (Overflowed() || o.Overflowed()) return Overflow();
  return FromParts(Int128{num_} * o.den_ + Int128{o.num_} * den_, Int128{den_} * o.den_);
}

Rational Rational::operator-(const Rational& o) const {
  if (Overflowed() || o.Overflowed()) return Overflow();
  return FromParts(Int128{num_} * o.den_ - Int128{o.num_} * den_, Int128{den_} * o.den_);
}

Rational Rational::operator*(const Rational& o) const {
  if (Overflowed() || o.Overflowed()) return Overflow();
  return FromParts(Int128{num_} * o.num_, Int128{den_} * o.den_);
}

Rational Rational::operator/(const Rational& o) const {
  if (Overflowed() || o.Overflowed() || o.num_ == 0) return Overflow();
  return FromParts(Int128{num_} * o.den_, Int128{den_} * o.num_);
}

Rational Rational::operator-() const {
  if (Overflowed()) return Overflow();
  // Negate in 128-bit space: -INT64_MIN is not representable in 64 bits.
  return FromParts(-Int128{num_}, Int128{den_});
}

bool operator<(const Rational& a, const Rational& b) {
  if (a.Overflowed() || b.Overflowed()) return false;
  return Int128{a.num_} * b.den_ < Int128{b.num_} * a.den_;
}

}  // namespace diffc
