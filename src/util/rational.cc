#include "util/rational.h"

#include <cstdlib>

namespace diffc {

namespace {

using Int128 = __int128;

std::int64_t CheckedNarrow(Int128 v) {
  if (v > INT64_MAX || v < INT64_MIN) {
    std::abort();  // Rational overflow: values in this library stay small.
  }
  return static_cast<std::int64_t>(v);
}

// Reduces num/den (den != 0) to lowest terms with a positive denominator.
void Reduce(Int128 num, Int128 den, std::int64_t* out_num, std::int64_t* out_den) {
  if (den < 0) {
    num = -num;
    den = -den;
  }
  Int128 a = num < 0 ? -num : num;
  Int128 b = den;
  while (b != 0) {
    Int128 t = a % b;
    a = b;
    b = t;
  }
  if (a == 0) a = 1;  // num == 0.
  *out_num = CheckedNarrow(num / a);
  *out_den = CheckedNarrow(den / a);
}

Rational FromParts(Int128 num, Int128 den) {
  std::int64_t n, d;
  Reduce(num, den, &n, &d);
  Rational r;
  // n/d is already in lowest terms; the constructor's reduction is a no-op.
  return Rational(n, d);
}

}  // namespace

Rational::Rational(std::int64_t num, std::int64_t den) {
  if (den == 0) std::abort();
  Reduce(num, den, &num_, &den_);
}

std::string Rational::ToString() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Rational Rational::operator+(const Rational& o) const {
  return FromParts(Int128{num_} * o.den_ + Int128{o.num_} * den_, Int128{den_} * o.den_);
}

Rational Rational::operator-(const Rational& o) const {
  return FromParts(Int128{num_} * o.den_ - Int128{o.num_} * den_, Int128{den_} * o.den_);
}

Rational Rational::operator*(const Rational& o) const {
  return FromParts(Int128{num_} * o.num_, Int128{den_} * o.den_);
}

Rational Rational::operator/(const Rational& o) const {
  if (o.num_ == 0) std::abort();
  return FromParts(Int128{num_} * o.den_, Int128{den_} * o.num_);
}

Rational Rational::operator-() const { return Rational(-num_, den_); }

bool operator<(const Rational& a, const Rational& b) {
  return Int128{a.num_} * b.den_ < Int128{b.num_} * a.den_;
}

}  // namespace diffc
