#include "util/random.h"

namespace diffc {

Mask Rng::RandomMask(int n, double density) {
  Mask m = 0;
  for (int i = 0; i < n; ++i) {
    if (Bernoulli(density)) m |= Mask{1} << i;
  }
  return m;
}

Mask Rng::RandomSubsetOf(Mask pool) {
  Mask m = 0;
  ForEachBit(pool, [&](int b) {
    if (Bernoulli(0.5)) m |= Mask{1} << b;
  });
  return m;
}

Mask Rng::RandomNonemptySubsetOf(Mask pool) {
  Mask m = RandomSubsetOf(pool);
  if (m != 0) return m;
  // Fall back to a uniformly random single element.
  int k = static_cast<int>(UniformInt(0, Popcount(pool) - 1));
  Mask p = pool;
  while (k-- > 0) p &= p - 1;
  return Mask{1} << LowestBit(p);
}

std::vector<Mask> Rng::RandomFamily(int n, int count, double density) {
  std::vector<Mask> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) out.push_back(RandomMask(n, density));
  return out;
}

}  // namespace diffc
