#ifndef DIFFC_UTIL_STATUS_H_
#define DIFFC_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace diffc {

/// Error categories used across the library. The library does not throw
/// exceptions; fallible operations return `Status` or `Result<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kResourceExhausted = 5,
  kInternal = 6,
  kDeadlineExceeded = 7,
  kCancelled = 8,
  kUnavailable = 9,
};

/// The largest declared `StatusCode` enumerator — the wire codecs bound
/// incoming status-code bytes with it, so it must track the enum above.
inline constexpr StatusCode kMaxStatusCode = StatusCode::kUnavailable;

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value, modeled on absl::Status.
///
/// A default-constructed `Status` is OK. Error statuses carry a code and a
/// message describing what went wrong.
///
/// `[[nodiscard]]`: every function returning a `Status` reports a failure
/// the caller must either handle or *explicitly* discard with a
/// `(void)`-cast carrying a comment that says why the error cannot matter
/// (the project linter rejects bare `(void)` discards). Silently dropping
/// a `Status` is how PR 1–2's overflow / deadline / degrade signals turn
/// back into silent wrong answers, so the compiler now rejects it.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. `code` may be
  /// `kOk`, in which case the message is ignored.
  Status(StatusCode code, std::string message)
      : code_(code), message_(code == StatusCode::kOk ? "" : std::move(message)) {}

  /// Returns an OK status.
  static Status Ok() { return Status(); }
  /// Returns an InvalidArgument error with `message`.
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  /// Returns an OutOfRange error with `message`.
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  /// Returns a FailedPrecondition error with `message`.
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  /// Returns a NotFound error with `message`.
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  /// Returns a ResourceExhausted error with `message`.
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  /// Returns an Internal error with `message`.
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  /// Returns a DeadlineExceeded error with `message` — a wall-clock bound
  /// expired before the computation finished.
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  /// Returns a Cancelled error with `message` — the caller's `CancelToken`
  /// fired before or during the computation.
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }
  /// Returns an Unavailable error with `message` — a transport-level
  /// failure (connection reset, torn frame, unreachable or injected-fault
  /// endpoint, open circuit breaker). Unavailable is the retryable
  /// failure class: the operation may not have executed at all.
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Statuses are equal iff code and message are equal (all OK statuses
  /// compare equal: an OK never carries a message).
  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }
  friend bool operator!=(const Status& a, const Status& b) { return !(a == b); }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error union, modeled on absl::StatusOr.
///
/// Either holds a `T` (when `ok()`) or an error `Status`. Accessing the value
/// of a non-OK result aborts in debug builds and is undefined otherwise.
///
/// `[[nodiscard]]` for the same reason as `Status`: a dropped `Result` is a
/// dropped error (and a wasted computation).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Constructs a failed result from a non-OK `status`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }
  /// The status: OK when a value is present.
  Status status() const { return value_.has_value() ? Status::Ok() : status_; }

  /// The held value; requires `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  /// The held value; requires `ok()`.
  T& value() & {
    assert(ok());
    return *value_;
  }
  /// Moves the held value out; requires `ok()`.
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Dereference sugar; requires `ok()`.
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace diffc

#endif  // DIFFC_UTIL_STATUS_H_
