#ifndef DIFFC_UTIL_RATIONAL_H_
#define DIFFC_UTIL_RATIONAL_H_

#include <cstdint>
#include <string>

namespace diffc {

/// An exact rational number with 64-bit numerator and denominator, always
/// stored in lowest terms with a positive denominator.
///
/// Used wherever the theory requires exact zero tests on real-valued
/// functions (e.g. densities of Simpson functions, Proposition 7.2), where
/// floating point would make "d_f(U) = 0" ill-defined. Intermediate products
/// use 128-bit arithmetic.
///
/// **Overflow handling.** When a reduced result does not fit in 64 bits (or
/// on division by zero / a zero denominator), the result is the sticky
/// *overflow* value: `Overflowed()` is true, and every arithmetic operation
/// involving it yields it again, so a single check at the end of a
/// computation detects overflow anywhere inside it. Fallible entry points
/// (`math/simplex`, `math/gauss`, `relational/simpson`, ...) check the flag
/// and surface `Status` errors; the process is never aborted.
///
/// Comparisons against an overflowed value are meaningless: `==`/`!=` treat
/// overflow as equal only to itself, and every ordering comparison
/// involving overflow returns false. Callers must test `Overflowed()`
/// before trusting comparisons.
class Rational {
 public:
  /// Zero.
  Rational() : num_(0), den_(1) {}
  /// The integer `n`.
  Rational(std::int64_t n) : num_(n), den_(1) {}  // NOLINT(google-explicit-constructor)
  /// The fraction `num/den`, reduced. `den == 0` yields the overflow value.
  Rational(std::int64_t num, std::int64_t den);

  /// The sticky overflow (poison) value.
  static Rational Overflow() {
    Rational r;
    r.num_ = 0;
    r.den_ = 0;
    return r;
  }

  /// True iff this is the overflow value — the result (transitively) of an
  /// operation whose reduced value did not fit in 64 bits, a division by
  /// zero, or a zero denominator.
  bool Overflowed() const { return den_ == 0; }

  /// Numerator of the reduced form (sign lives here).
  std::int64_t num() const { return num_; }
  /// Denominator of the reduced form; positive, except 0 for the overflow
  /// value.
  std::int64_t den() const { return den_; }

  /// True iff this is exactly zero (overflow is not zero).
  bool IsZero() const { return num_ == 0 && den_ != 0; }
  /// True iff this is strictly negative (overflow is not negative).
  bool IsNegative() const { return num_ < 0; }

  /// Lossy conversion to double; NaN for the overflow value.
  double ToDouble() const { return static_cast<double>(num_) / static_cast<double>(den_); }
  /// Renders "p/q", or just "p" when the denominator is 1, or "overflow".
  std::string ToString() const;

  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  /// Division; division by zero yields the overflow value.
  Rational operator/(const Rational& o) const;
  Rational operator-() const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend bool operator!=(const Rational& a, const Rational& b) { return !(a == b); }
  friend bool operator<(const Rational& a, const Rational& b);
  friend bool operator<=(const Rational& a, const Rational& b) { return a < b || a == b; }
  friend bool operator>(const Rational& a, const Rational& b) { return b < a; }
  friend bool operator>=(const Rational& a, const Rational& b) { return b <= a; }

 private:
  std::int64_t num_;
  std::int64_t den_;
};

}  // namespace diffc

#endif  // DIFFC_UTIL_RATIONAL_H_
