#ifndef DIFFC_UTIL_RATIONAL_H_
#define DIFFC_UTIL_RATIONAL_H_

#include <cstdint>
#include <string>

namespace diffc {

/// An exact rational number with 64-bit numerator and denominator, always
/// stored in lowest terms with a positive denominator.
///
/// Used wherever the theory requires exact zero tests on real-valued
/// functions (e.g. densities of Simpson functions, Proposition 7.2), where
/// floating point would make "d_f(U) = 0" ill-defined. Intermediate products
/// use 128-bit arithmetic; overflow of the reduced result aborts (the
/// library only forms rationals from small counts and probability weights).
class Rational {
 public:
  /// Zero.
  Rational() : num_(0), den_(1) {}
  /// The integer `n`.
  Rational(std::int64_t n) : num_(n), den_(1) {}  // NOLINT(google-explicit-constructor)
  /// The fraction `num/den`, reduced. Requires den != 0.
  Rational(std::int64_t num, std::int64_t den);

  /// Numerator of the reduced form (sign lives here).
  std::int64_t num() const { return num_; }
  /// Denominator of the reduced form; always positive.
  std::int64_t den() const { return den_; }

  /// True iff this is exactly zero.
  bool IsZero() const { return num_ == 0; }
  /// True iff this is strictly negative.
  bool IsNegative() const { return num_ < 0; }

  /// Lossy conversion to double.
  double ToDouble() const { return static_cast<double>(num_) / static_cast<double>(den_); }
  /// Renders "p/q", or just "p" when the denominator is 1.
  std::string ToString() const;

  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  /// Division; requires o != 0.
  Rational operator/(const Rational& o) const;
  Rational operator-() const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend bool operator!=(const Rational& a, const Rational& b) { return !(a == b); }
  friend bool operator<(const Rational& a, const Rational& b);
  friend bool operator<=(const Rational& a, const Rational& b) { return a < b || a == b; }
  friend bool operator>(const Rational& a, const Rational& b) { return b < a; }
  friend bool operator>=(const Rational& a, const Rational& b) { return b <= a; }

 private:
  std::int64_t num_;
  std::int64_t den_;
};

}  // namespace diffc

#endif  // DIFFC_UTIL_RATIONAL_H_
