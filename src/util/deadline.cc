#include "util/deadline.h"

namespace diffc {

Status StopCheck::CheckNow() {
  if (!armed_ || !status_.ok()) return status_;
  ++samples_;
  if (token_.Cancelled()) {
    status_ = Status::Cancelled("cancel token fired");
  } else if (deadline_.Expired()) {
    status_ = Status::DeadlineExceeded("deadline expired");
  }
  return status_;
}

}  // namespace diffc
