#ifndef DIFFC_UTIL_THREAD_ANNOTATIONS_H_
#define DIFFC_UTIL_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis macros (the `-Wthread-safety` capability
/// model), no-ops on every other compiler. They let the locking discipline
/// that PR 1–3 documented in comments be *proved* at compile time:
///
///   - a member is declared `GUARDED_BY(mu_)` and every unlocked access is
///     a compile error;
///   - a function that must be called with the lock held is `REQUIRES(mu_)`
///     and every call site without it is a compile error;
///   - lock/unlock functions are `ACQUIRE()` / `RELEASE()`, scoped lockers
///     are `SCOPED_CAPABILITY`, and a function that must NOT hold the lock
///     (it takes it itself) is `EXCLUDES(mu_)`.
///
/// The project convention (enforced by `tools/diffc_lint.py`) is:
///
///   - protected state uses `diffc::Mutex` (`util/mutex.h`), never a raw
///     `std::mutex` member, and carries `GUARDED_BY` on every protected
///     field;
///   - critical sections use the RAII `MutexLock`, never a naked
///     `std::lock_guard`;
///   - `NO_THREAD_SAFETY_ANALYSIS` is a last resort and must carry a
///     comment explaining why the analysis cannot see the invariant.
///
/// CI builds `src/` with `clang++ -Wthread-safety -Werror=thread-safety`,
/// so a mis-locked access does not merge. The macro set and semantics
/// follow the Clang documentation ("Thread Safety Analysis") and Abseil's
/// `thread_annotations.h`; the names are unprefixed, like Abseil's, so the
/// annotated code reads identically to the upstream exemplars.

#if defined(__clang__) && !defined(SWIG)
#define DIFFC_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define DIFFC_THREAD_ANNOTATION__(x)  // no-op
#endif

/// Declares a type to be a capability ("mutex"): lockable state the
/// analysis tracks. Applied to the class, e.g. `class CAPABILITY("mutex")
/// Mutex`.
#define CAPABILITY(x) DIFFC_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII class whose constructor acquires and destructor
/// releases a capability (e.g. `MutexLock`).
#define SCOPED_CAPABILITY DIFFC_THREAD_ANNOTATION__(scoped_lockable)

/// Declares that a data member is protected by the given capability:
/// reads require the capability held (shared or exclusive), writes require
/// it held exclusively.
#define GUARDED_BY(x) DIFFC_THREAD_ANNOTATION__(guarded_by(x))

/// Declares that the *pointee* of a pointer member is protected by the
/// given capability (the pointer itself is not).
#define PT_GUARDED_BY(x) DIFFC_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Declares that the function may only be called with the listed
/// capabilities held exclusively; they are still held on return.
#define REQUIRES(...) DIFFC_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// As `REQUIRES`, but shared (reader) access suffices.
#define REQUIRES_SHARED(...) \
  DIFFC_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Declares that the function acquires the listed capabilities (not held
/// on entry, held on return). With no argument on a member of a capability
/// class, refers to `this`.
#define ACQUIRE(...) DIFFC_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// As `ACQUIRE`, for shared (reader) acquisition.
#define ACQUIRE_SHARED(...) \
  DIFFC_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Declares that the function releases the listed capabilities (held on
/// entry, not held on return).
#define RELEASE(...) DIFFC_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// As `RELEASE`, for shared (reader) release.
#define RELEASE_SHARED(...) \
  DIFFC_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Declares that the function attempts to acquire the capability and
/// returns `success` (a boolean) iff it did.
#define TRY_ACQUIRE(...) \
  DIFFC_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Declares that the caller must NOT hold the listed capabilities — the
/// function acquires them itself, so holding one on entry would deadlock.
#define EXCLUDES(...) DIFFC_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Asserts (to the analysis) that the calling thread already holds the
/// capability, for facts it cannot derive — e.g. a predicate invoked by a
/// condition-variable wait that re-holds the lock around each evaluation.
#define ASSERT_CAPABILITY(x) DIFFC_THREAD_ANNOTATION__(assert_capability(x))

/// Declares that the function returns a reference to the given capability,
/// letting accessors participate in the analysis.
#define RETURN_CAPABILITY(x) DIFFC_THREAD_ANNOTATION__(lock_returned(x))

/// Turns the analysis off for one function. Last resort; the project
/// linter expects an adjacent comment saying why.
#define NO_THREAD_SAFETY_ANALYSIS \
  DIFFC_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // DIFFC_UTIL_THREAD_ANNOTATIONS_H_
