#ifndef DIFFC_UTIL_FAILPOINT_H_
#define DIFFC_UTIL_FAILPOINT_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace diffc::failpoint {

/// Fail points: named fault-injection sites wired into the library's
/// failure paths (witness enumeration, the engine caches, the Prop. 5.4
/// CNF translation, `Rational` arithmetic, basket IO), so every `Status`
/// error a production deployment might see can be driven deterministically
/// in tests.
///
/// A site is written as
///
///     if (DIFFC_FAILPOINT("witness/truncate")) {
///       return Status::ResourceExhausted("failpoint: ...");
///     }
///
/// The macro expands to a registry evaluation when the library is built
/// with the `DIFFC_FAILPOINTS` CMake option, and to the constant `false`
/// otherwise — release builds carry zero overhead and cannot be armed.
/// The registry API below is always compiled (tests of the trigger logic
/// run in every configuration); only the macro is gated.
///
/// Arming: call `Arm()` / `ArmFromString()` from tests, or set the
/// `DIFFC_FAILPOINTS` environment variable before the first evaluation,
/// e.g. `DIFFC_FAILPOINTS="witness/truncate=always;rational/overflow=hit(3)"`.
///
/// Thread-safe; a fired nth-hit trigger observed from several threads fires
/// exactly once.

/// When an armed fail point fires.
struct Spec {
  enum class Trigger {
    kAlways,       ///< Fires on every evaluation.
    kNthHit,       ///< Fires on exactly the `n`-th evaluation (1-based).
    kAfterHit,     ///< Fires on every evaluation after the first `n`.
    kProbability,  ///< Fires with probability `probability` (seeded).
  };

  Trigger trigger = Trigger::kAlways;
  std::uint64_t n = 0;
  double probability = 0.0;
  std::uint64_t seed = 0x5eedf01d;

  /// Fires on every evaluation.
  static Spec Always() { return Spec{}; }
  /// Fires on exactly the `n`-th evaluation (1-based), once.
  static Spec NthHit(std::uint64_t n) {
    Spec s;
    s.trigger = Trigger::kNthHit;
    s.n = n;
    return s;
  }
  /// Fires on every evaluation after the first `n`.
  static Spec AfterHit(std::uint64_t n) {
    Spec s;
    s.trigger = Trigger::kAfterHit;
    s.n = n;
    return s;
  }
  /// Fires with probability `p` per evaluation, deterministically under
  /// `seed`.
  static Spec Probability(double p, std::uint64_t seed = 0x5eedf01d) {
    Spec s;
    s.trigger = Trigger::kProbability;
    s.probability = p;
    s.seed = seed;
    return s;
  }
};

/// True iff the library was built with fail-point sites compiled in
/// (`-DDIFFC_FAILPOINTS=ON`); arming still works without it, but no site
/// evaluates.
bool CompiledIn();

/// Arms (or re-arms) the fail point `name`; resets its hit/trip counters.
void Arm(const std::string& name, const Spec& spec);

/// Disarms `name` (no-op when not armed).
void Disarm(const std::string& name);

/// Disarms every fail point.
void DisarmAll();

/// Evaluations of `name` since it was (last) armed; 0 when not armed.
std::uint64_t HitCount(const std::string& name);

/// Times `name` fired since it was (last) armed; 0 when not armed.
std::uint64_t TripCount(const std::string& name);

/// Arms fail points from a spec string:
///
///     name=trigger[;name=trigger...]
///
/// with `trigger` one of `always`, `hit(N)`, `after(N)`, `prob(P)`,
/// `prob(P,SEED)`, or `off` (disarm). Whitespace around tokens is
/// ignored. This is the grammar of the `DIFFC_FAILPOINTS` environment
/// variable.
Status ArmFromString(const std::string& spec);

/// Evaluates the fail point `name`: false unless armed and its trigger
/// fires. The target of the `DIFFC_FAILPOINT` macro; call directly only in
/// tests of the registry itself.
bool Evaluate(const char* name);

}  // namespace diffc::failpoint

#if defined(DIFFC_FAILPOINTS)
#define DIFFC_FAILPOINT(name) (::diffc::failpoint::Evaluate(name))
#else
#define DIFFC_FAILPOINT(name) (false)
#endif

#endif  // DIFFC_UTIL_FAILPOINT_H_
