#ifndef DIFFC_UTIL_RANDOM_H_
#define DIFFC_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

#include "util/bitops.h"

namespace diffc {

/// A deterministic pseudo-random source used by generators, property tests
/// and benchmarks. All randomized components of the library take an `Rng&`
/// so that every experiment is reproducible from a seed.
class Rng {
 public:
  /// Creates a generator seeded with `seed`.
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  Rng(const Rng&) = delete;
  Rng& operator=(const Rng&) = delete;

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli trial with success probability `p`.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// A random subset of the `n`-attribute universe where each attribute is
  /// included independently with probability `density`.
  Mask RandomMask(int n, double density);

  /// A uniformly random subset of `pool` (possibly empty).
  Mask RandomSubsetOf(Mask pool);

  /// A uniformly random nonempty subset of `pool`. Requires pool != 0.
  Mask RandomNonemptySubsetOf(Mask pool);

  /// A random family of `count` subsets of the `n`-attribute universe, each
  /// drawn with `RandomMask(n, density)`.
  std::vector<Mask> RandomFamily(int n, int count, double density);

  /// Access to the underlying engine for std distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace diffc

#endif  // DIFFC_UTIL_RANDOM_H_
