#ifndef DIFFC_UTIL_DEADLINE_H_
#define DIFFC_UTIL_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "util/status.h"

namespace diffc {

/// A wall-clock execution bound on `std::chrono::steady_clock`.
///
/// A default-constructed deadline never expires, so unbounded callers pay
/// nothing: `Expired()` is a single comparison and never reads the clock.
/// Deadlines are plain values — copy them freely across threads.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// A deadline that never expires.
  Deadline() : expiry_(Clock::time_point::max()) {}

  /// A deadline that never expires (named form).
  static Deadline Never() { return Deadline(); }

  /// Expires `budget` from now. Zero or negative budgets are already
  /// expired — useful for draining queues fail-fast.
  static Deadline After(Clock::duration budget) {
    Deadline d;
    d.expiry_ = Clock::now() + budget;
    return d;
  }

  /// Expires at the given instant.
  static Deadline At(Clock::time_point expiry) {
    Deadline d;
    d.expiry_ = expiry;
    return d;
  }

  /// The earlier (tighter) of two deadlines.
  static Deadline Earlier(Deadline a, Deadline b) {
    return a.expiry_ <= b.expiry_ ? a : b;
  }

  /// True iff this deadline can never expire.
  bool IsNever() const { return expiry_ == Clock::time_point::max(); }

  /// True iff the deadline has passed. Reads the clock only for finite
  /// deadlines.
  bool Expired() const { return !IsNever() && Clock::now() >= expiry_; }

  /// Time left before expiry (negative once expired); `duration::max()`
  /// for a never-expiring deadline.
  Clock::duration Remaining() const {
    if (IsNever()) return Clock::duration::max();
    return expiry_ - Clock::now();
  }

  /// The expiry instant (`time_point::max()` for Never).
  Clock::time_point expiry() const { return expiry_; }

 private:
  Clock::time_point expiry_;
};

/// A shareable cooperative-cancellation flag.
///
/// Copies observe the same underlying flag; `Cancel()` on any copy is seen
/// by all of them. Used to cancel an in-flight `CheckBatch`: queued queries
/// drain as `Cancelled`, and running solvers stop at their next cooperative
/// check-point. Cancellation is one-way — a fired token stays fired.
///
/// Thread-safe: `Cancel()` and `Cancelled()` may race freely.
class CancelToken {
 public:
  /// A fresh, unfired token.
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Fires the token. Idempotent.
  void Cancel() const { flag_->store(true, std::memory_order_release); }

  /// True iff some copy of this token has fired.
  bool Cancelled() const { return flag_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// The cooperative stop condition threaded through long-running search
/// loops (DPLL, CDCL, the transversal search, the exhaustive implication
/// checker): a deadline plus a cancel token, checked amortized.
///
/// `Check()` is designed to sit on a hot path: it consults the clock and
/// the token only on the first call and then every `stride` calls (default
/// 1024); in between it is a branch and a decrement. Once a stop condition
/// fires the status is sticky — every later call returns the same error
/// without re-reading the clock — so an unwinding search cannot "un-stop".
///
/// Not thread-safe: each solver invocation owns its `StopCheck`. Share the
/// `CancelToken` across threads instead.
class StopCheck {
 public:
  static constexpr std::uint32_t kDefaultStride = 1024;

  /// A check that never stops (no deadline, token never fires).
  StopCheck() = default;

  /// Stops when `deadline` expires or `token` fires, sampled every
  /// `stride` calls (clamped to at least 1).
  StopCheck(Deadline deadline, CancelToken token,
            std::uint32_t stride = kDefaultStride)
      : deadline_(deadline),
        token_(std::move(token)),
        armed_(true),
        stride_(stride < 1 ? 1 : stride) {}

  /// Amortized check: OK, or DeadlineExceeded / Cancelled (sticky). The
  /// first call always samples, so an already-expired deadline fires
  /// immediately.
  Status Check() {
    if (!armed_ || !status_.ok()) return status_;
    if (countdown_ > 0) {
      --countdown_;
      return Status();
    }
    countdown_ = stride_ - 1;
    return CheckNow();
  }

  /// Unamortized check: samples the token and clock right now (sticky).
  Status CheckNow();

  /// True iff a stop condition has fired.
  bool stopped() const { return !status_.ok(); }

  /// The sticky stop status (OK while running).
  const Status& status() const { return status_; }

  /// The deadline this check enforces.
  const Deadline& deadline() const { return deadline_; }

  /// Number of full (clock/token) samples performed — the real cost of the
  /// check, for overhead accounting in benchmarks.
  std::uint64_t samples() const { return samples_; }

 private:
  Deadline deadline_;
  CancelToken token_;
  bool armed_ = false;
  std::uint32_t stride_ = kDefaultStride;
  std::uint32_t countdown_ = 0;  // First Check() samples immediately.
  std::uint64_t samples_ = 0;
  Status status_;
};

}  // namespace diffc

#endif  // DIFFC_UTIL_DEADLINE_H_
