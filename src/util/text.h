#ifndef DIFFC_UTIL_TEXT_H_
#define DIFFC_UTIL_TEXT_H_

#include <string>
#include <string_view>
#include <vector>

namespace diffc {

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on the character `sep`; consecutive separators yield empty
/// pieces. Splitting the empty string yields one empty piece.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

}  // namespace diffc

#endif  // DIFFC_UTIL_TEXT_H_
