#ifndef DIFFC_UTIL_MUTEX_H_
#define DIFFC_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <utility>

#include "util/thread_annotations.h"

namespace diffc {

/// An annotated wrapper over `std::mutex`, the project's only mutex type
/// for protected members (enforced by `tools/diffc_lint.py`): a raw
/// `std::mutex` member is invisible to Clang's thread-safety analysis,
/// while a `Mutex` participates as a capability, so `GUARDED_BY(mu_)`
/// members and `REQUIRES(mu_)` functions are checked at compile time.
///
/// Same cost as `std::mutex` (the annotations are attributes, not code).
/// Lock through the RAII `MutexLock` below; `Lock()`/`Unlock()` exist for
/// the rare manually-paired section and for `MutexLock` itself.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tells the analysis the calling thread holds this mutex, for facts it
  /// cannot derive — e.g. inside a predicate that `CondVarAny::Wait`
  /// re-evaluates with the lock held, or a callee reached only from
  /// `REQUIRES` contexts through a type-erased boundary. No runtime effect.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVarAny;
  std::mutex mu_;
};

/// RAII critical section over `Mutex` — the annotated replacement for
/// `std::lock_guard` (which the analysis cannot see). Scoped acquire in
/// the constructor, release in the destructor:
///
///     MutexLock lock(&mu_);
///     guarded_member_ = ...;  // OK: the analysis knows mu_ is held.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// A condition variable usable with `Mutex`, wrapping
/// `std::condition_variable_any`. `Wait` must be called with the mutex
/// held (`REQUIRES`), waits releasing it, and returns with it re-held —
/// exactly the `std::condition_variable` contract, but visible to the
/// analysis.
///
/// The predicate is re-evaluated with the mutex held; the analysis cannot
/// see that through the type-erased wait, so a predicate touching guarded
/// state should open with `mu_.AssertHeld()`.
class CondVarAny {
 public:
  CondVarAny() = default;
  CondVarAny(const CondVarAny&) = delete;
  CondVarAny& operator=(const CondVarAny&) = delete;

  /// Blocks until `pred()` is true, releasing `mu` while blocked.
  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) REQUIRES(mu) {
    // Adopt the already-held native mutex so the std wait can release and
    // re-acquire it; `release()` hands ownership back without unlocking,
    // keeping the capability held on return as declared.
    std::unique_lock<std::mutex> relock(mu.mu_, std::adopt_lock);
    cv_.wait(relock, std::move(pred));
    relock.release();
  }

  /// As above, but also wakes on `stop` being requested. Returns the final
  /// `pred()` value (false means a stop request interrupted the wait).
  template <typename StopToken, typename Predicate>
  bool Wait(Mutex& mu, StopToken stop, Predicate pred) REQUIRES(mu) {
    std::unique_lock<std::mutex> relock(mu.mu_, std::adopt_lock);
    const bool satisfied = cv_.wait(relock, std::move(stop), std::move(pred));
    relock.release();
    return satisfied;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace diffc

#endif  // DIFFC_UTIL_MUTEX_H_
