#ifndef DIFFC_UTIL_BITOPS_H_
#define DIFFC_UTIL_BITOPS_H_

#include <bit>
#include <cstdint>

namespace diffc {

/// A subset of a universe of at most 64 attributes, encoded as a bitmask.
/// Bit `i` set means attribute `i` is in the subset.
using Mask = std::uint64_t;

/// The full universe mask over `n` attributes (bits 0..n-1 set).
/// Requires 0 <= n <= 64.
inline Mask FullMask(int n) {
  return n >= 64 ? ~Mask{0} : ((Mask{1} << n) - 1);
}

/// Number of attributes in `m`.
inline int Popcount(Mask m) { return std::popcount(m); }

/// True iff `a` is a subset of `b`.
inline bool IsSubset(Mask a, Mask b) { return (a & ~b) == 0; }

/// Index of the lowest set bit. Requires m != 0.
inline int LowestBit(Mask m) { return std::countr_zero(m); }

/// Calls `fn(int bit)` for each set bit of `m`, lowest first.
template <typename Fn>
void ForEachBit(Mask m, Fn fn) {
  while (m != 0) {
    int b = std::countr_zero(m);
    fn(b);
    m &= m - 1;
  }
}

/// Calls `fn(Mask sub)` for every subset `sub` of `m`, including the empty
/// set and `m` itself. Visits 2^|m| subsets in decreasing binary order
/// starting from `m`.
template <typename Fn>
void ForEachSubset(Mask m, Fn fn) {
  Mask sub = m;
  while (true) {
    fn(sub);
    if (sub == 0) break;
    sub = (sub - 1) & m;
  }
}

/// Calls `fn(Mask sup)` for every superset `sup` of `base` within the
/// universe mask `full` (i.e. base <= sup <= full). Requires base subset of
/// full. Visits 2^(|full|-|base|) sets.
template <typename Fn>
void ForEachSuperset(Mask base, Mask full, Fn fn) {
  Mask free = full & ~base;
  Mask sub = free;
  while (true) {
    fn(base | sub);
    if (sub == 0) break;
    sub = (sub - 1) & free;
  }
}

}  // namespace diffc

#endif  // DIFFC_UTIL_BITOPS_H_
