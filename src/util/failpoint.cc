#include "util/failpoint.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <unordered_map>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/text.h"
#include "util/thread_annotations.h"

namespace diffc::failpoint {

namespace {

// Per-armed-point state. The rng is only advanced by probability triggers,
// so nth-hit / always points stay exactly deterministic.
struct PointState {
  Spec spec;
  std::uint64_t hits = 0;
  std::uint64_t trips = 0;
  std::mt19937_64 rng;
};

// Parses "hit(N)" / "after(N)" / "prob(P[,SEED])" arguments.
Result<Spec> ParseTrigger(std::string_view trigger) {
  std::string t(Trim(trigger));
  if (t == "always") return Spec::Always();
  auto call = [&](const char* fn) -> std::string {
    const std::string prefix = std::string(fn) + "(";
    if (t.rfind(prefix, 0) == 0 && t.back() == ')') {
      return t.substr(prefix.size(), t.size() - prefix.size() - 1);
    }
    return "";
  };
  try {
    if (std::string arg = call("hit"); !arg.empty()) {
      return Spec::NthHit(std::stoull(arg));
    }
    if (std::string arg = call("after"); !arg.empty()) {
      return Spec::AfterHit(std::stoull(arg));
    }
    if (std::string arg = call("prob"); !arg.empty()) {
      std::vector<std::string> parts = Split(arg, ',');
      if (parts.size() == 1) return Spec::Probability(std::stod(parts[0]));
      if (parts.size() == 2) {
        return Spec::Probability(std::stod(parts[0]),
                                 std::stoull(std::string(Trim(parts[1]))));
      }
    }
  } catch (...) {
    // Fall through to the error below.
  }
  return Status::InvalidArgument("bad failpoint trigger: " + t);
}

struct Registry {
  Mutex mu;
  std::unordered_map<std::string, PointState> points GUARDED_BY(mu);
  // Lock-free fast path: Evaluate() returns immediately while nothing is
  // armed, so a failpoint build running the regular test suite pays one
  // relaxed load per site.
  std::atomic<std::size_t> armed_count{0};

  Registry();
};

// The Into variants operate on an explicit registry so the constructor's
// env-var arming never re-enters GetRegistry() mid-initialization (that
// recursion deadlocks the function-local static's init guard).
void ArmInto(Registry& r, const std::string& name, const Spec& spec) {
  MutexLock lock(&r.mu);
  PointState state;
  state.spec = spec;
  state.rng.seed(spec.seed);
  r.points[name] = std::move(state);
  r.armed_count.store(r.points.size(), std::memory_order_release);
}

void DisarmInto(Registry& r, const std::string& name) {
  MutexLock lock(&r.mu);
  r.points.erase(name);
  r.armed_count.store(r.points.size(), std::memory_order_release);
}

Status ArmFromStringInto(Registry& r, const std::string& spec) {
  for (const std::string& raw : Split(spec, ';')) {
    std::string_view entry = Trim(raw);
    if (entry.empty()) continue;
    std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("failpoint entry without '=': " +
                                     std::string(entry));
    }
    std::string name(Trim(entry.substr(0, eq)));
    std::string_view trigger = Trim(entry.substr(eq + 1));
    if (name.empty()) {
      return Status::InvalidArgument("failpoint entry without a name");
    }
    if (trigger == "off") {
      DisarmInto(r, name);
      continue;
    }
    Result<Spec> parsed = ParseTrigger(trigger);
    if (!parsed.ok()) return parsed.status();
    ArmInto(r, name, *parsed);
  }
  return Status::Ok();
}

Registry::Registry() {
  // Env-var arming happens once, before the first evaluation or query.
  const char* env = std::getenv("DIFFC_FAILPOINTS");
  if (env != nullptr && *env != '\0') {
    Status s = ArmFromStringInto(*this, env);
    if (!s.ok()) {
      std::fprintf(stderr, "diffc: ignoring bad DIFFC_FAILPOINTS spec: %s\n",
                   s.ToString().c_str());
    }
  }
}

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

}  // namespace

bool CompiledIn() {
#if defined(DIFFC_FAILPOINTS)
  return true;
#else
  return false;
#endif
}

void Arm(const std::string& name, const Spec& spec) {
  ArmInto(GetRegistry(), name, spec);
}

void Disarm(const std::string& name) { DisarmInto(GetRegistry(), name); }

void DisarmAll() {
  Registry& r = GetRegistry();
  MutexLock lock(&r.mu);
  r.points.clear();
  r.armed_count.store(0, std::memory_order_release);
}

std::uint64_t HitCount(const std::string& name) {
  Registry& r = GetRegistry();
  MutexLock lock(&r.mu);
  auto it = r.points.find(name);
  return it == r.points.end() ? 0 : it->second.hits;
}

std::uint64_t TripCount(const std::string& name) {
  Registry& r = GetRegistry();
  MutexLock lock(&r.mu);
  auto it = r.points.find(name);
  return it == r.points.end() ? 0 : it->second.trips;
}

bool Evaluate(const char* name) {
  Registry& r = GetRegistry();
  if (r.armed_count.load(std::memory_order_acquire) == 0) return false;
  bool fire = false;
  {
    MutexLock lock(&r.mu);
    auto it = r.points.find(name);
    if (it == r.points.end()) return false;
    PointState& p = it->second;
    ++p.hits;
    switch (p.spec.trigger) {
      case Spec::Trigger::kAlways:
        fire = true;
        break;
      case Spec::Trigger::kNthHit:
        fire = p.hits == p.spec.n;
        break;
      case Spec::Trigger::kAfterHit:
        fire = p.hits > p.spec.n;
        break;
      case Spec::Trigger::kProbability:
        fire = std::uniform_real_distribution<double>(0.0, 1.0)(p.rng) <
               p.spec.probability;
        break;
    }
    if (fire) ++p.trips;
  }
  // Observability outside the registry lock: a fired point is a rare,
  // test-only event, but the metrics registry takes its own mutex on first
  // lookup and must not nest under ours.
  if (fire && obs::MetricsEnabled()) {
    obs::Registry::Global()
        .GetCounter("diffc_failpoint_fires_total", "Fail-point trips, by site.",
                    {{"site", name}})
        ->Inc();
    obs::GlobalEventLog().Record("failpoint_fired", {{"site", name}});
  }
  return fire;
}

Status ArmFromString(const std::string& spec) {
  return ArmFromStringInto(GetRegistry(), spec);
}

}  // namespace diffc::failpoint
