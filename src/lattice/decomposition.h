#ifndef DIFFC_LATTICE_DECOMPOSITION_H_
#define DIFFC_LATTICE_DECOMPOSITION_H_

#include <cstdint>
#include <vector>

#include "lattice/interval.h"
#include "lattice/set_family.h"
#include "util/status.h"

namespace diffc {

/// Lattice decompositions (Definition 2.6, with the pointwise
/// characterization established in the proof of Proposition 2.9):
///
///   L(X, Y) = ∪_{W ∈ W(Y)} [X, S∖W]
///           = { U | X ⊆ U ⊆ S and no member Y ∈ Y has Y ⊆ U }.
///
/// Membership is O(|Y|); enumeration is exponential and guarded.

/// True iff `u` ∈ L(`x`, `family`) within a universe of `n` attributes.
bool InDecomposition(int n, const ItemSet& x, const SetFamily& family, const ItemSet& u);

/// True iff L(`x`, `family`) = ∅, i.e. some member of `family` is contained
/// in `x` — exactly when the constraint `x -> family` is trivial.
bool DecompositionIsEmpty(const ItemSet& x, const SetFamily& family);

/// All elements of L(`x`, `family`), sorted by mask. Requires the number of
/// free attributes `n - |x|` to be at most `max_free_bits` (default 24);
/// returns ResourceExhausted otherwise.
Result<std::vector<ItemSet>> EnumerateDecomposition(int n, const ItemSet& x,
                                                    const SetFamily& family,
                                                    int max_free_bits = 24);

/// |L(`x`, `family`)| without materializing the elements; same guard as
/// `EnumerateDecomposition`.
Result<std::uint64_t> CountDecomposition(int n, const ItemSet& x, const SetFamily& family,
                                         int max_free_bits = 24);

/// The interval cover of Definition 2.6 built from *minimal* witness sets:
/// nonempty intervals `[x, S∖W]` for each minimal `W ∈ W(family)`. Their
/// union is exactly L(x, family); minimal witness sets give the maximal
/// intervals.
Result<std::vector<Interval>> DecompositionIntervalCover(int n, const ItemSet& x,
                                                         const SetFamily& family);

}  // namespace diffc

#endif  // DIFFC_LATTICE_DECOMPOSITION_H_
