#ifndef DIFFC_LATTICE_UNIVERSE_H_
#define DIFFC_LATTICE_UNIVERSE_H_

#include <string>
#include <vector>

#include "util/bitops.h"
#include "util/status.h"

namespace diffc {

/// The finite set `S` over which all constraints, functions and lattices in
/// the paper are defined: an ordered list of named attributes (items).
///
/// A universe holds at most 64 attributes (subsets are `Mask` bitmasks).
/// Attribute `i` corresponds to bit `i`.
class Universe {
 public:
  /// An empty universe.
  Universe() = default;

  /// A universe of `n` attributes named "A", "B", ..., "Z", "A1", "B1", ...
  /// Requires 0 <= n <= 64 (asserted in debug builds; clamped otherwise —
  /// trusted internal callers only; validate external input through
  /// `LettersChecked`).
  static Universe Letters(int n);

  /// `Letters` for untrusted sizes: InvalidArgument outside [0, 64], the
  /// same contract `Named` enforces. The wire protocol, parsers, and CLIs
  /// size universes through this.
  static Result<Universe> LettersChecked(int n);

  /// A universe with the given attribute names. Names must be nonempty,
  /// unique, and at most 64 of them.
  static Result<Universe> Named(std::vector<std::string> names);

  /// Number of attributes.
  int size() const { return static_cast<int>(names_.size()); }

  /// The mask with all attributes present.
  Mask full_mask() const { return FullMask(size()); }

  /// Name of attribute `i`. Requires 0 <= i < size().
  const std::string& name(int i) const { return names_[i]; }

  /// Index of the attribute named `name`, or NotFound.
  Result<int> Index(const std::string& name) const;

  /// Renders a subset as concatenated names when all names are single
  /// characters (e.g. "ACD"), comma-separated otherwise (e.g. "a1,c3").
  /// The empty set renders as "{}" ... spelled `kEmptySetText`.
  std::string FormatSet(Mask m) const;

  /// Renders a family of subsets as "{M1, M2, ...}".
  std::string FormatFamily(const std::vector<Mask>& members) const;

  /// Text used for the empty subset ("0", following the paper's f(∅)).
  static constexpr const char* kEmptySetText = "0";

 private:
  std::vector<std::string> names_;
};

}  // namespace diffc

#endif  // DIFFC_LATTICE_UNIVERSE_H_
