#include "lattice/universe.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace diffc {

Universe Universe::Letters(int n) {
  // An out-of-range n used to truncate silently at 64 — inconsistent with
  // `Named`, which rejects — so a caller asking for a 70-attribute
  // universe got a 64-attribute one and every later mask computed against
  // the wrong size. Assert here; boundary code uses LettersChecked.
  assert(n >= 0 && n <= 64 && "Universe::Letters requires 0 <= n <= 64");
  Universe u;
  for (int i = 0; i < n && i < 64; ++i) {
    std::string name(1, static_cast<char>('A' + (i % 26)));
    if (i >= 26) name += std::to_string(i / 26);
    u.names_.push_back(std::move(name));
  }
  return u;
}

Result<Universe> Universe::LettersChecked(int n) {
  if (n < 0 || n > 64) {
    return Status::InvalidArgument("universe supports at most 64 attributes, got n=" +
                                   std::to_string(n));
  }
  return Letters(n);
}

Result<Universe> Universe::Named(std::vector<std::string> names) {
  if (names.size() > 64) {
    return Status::InvalidArgument("universe supports at most 64 attributes");
  }
  std::unordered_set<std::string> seen;
  for (const std::string& n : names) {
    if (n.empty()) return Status::InvalidArgument("empty attribute name");
    if (!seen.insert(n).second) {
      return Status::InvalidArgument("duplicate attribute name: " + n);
    }
  }
  Universe u;
  u.names_ = std::move(names);
  return u;
}

Result<int> Universe::Index(const std::string& name) const {
  for (int i = 0; i < size(); ++i) {
    if (names_[i] == name) return i;
  }
  return Status::NotFound("no attribute named " + name);
}

std::string Universe::FormatSet(Mask m) const {
  if (m == 0) return kEmptySetText;
  bool all_single = true;
  ForEachBit(m, [&](int b) {
    if (names_[b].size() != 1) all_single = false;
  });
  std::string out;
  bool first = true;
  ForEachBit(m, [&](int b) {
    if (!first && !all_single) out += ",";
    out += names_[b];
    first = false;
  });
  return out;
}

std::string Universe::FormatFamily(const std::vector<Mask>& members) const {
  std::string out = "{";
  for (size_t i = 0; i < members.size(); ++i) {
    if (i > 0) out += ", ";
    out += FormatSet(members[i]);
  }
  out += "}";
  return out;
}

}  // namespace diffc
