#ifndef DIFFC_LATTICE_MOBIUS_H_
#define DIFFC_LATTICE_MOBIUS_H_

#include <cstdint>
#include <vector>

#include "lattice/itemset.h"
#include "util/bitops.h"
#include "util/status.h"

namespace diffc {

/// Largest universe size for which the library materializes full set
/// functions (2^n values).
inline constexpr int kMaxSetFunctionBits = 22;

/// A total function `f : 2^S -> T` over an `n`-attribute universe, stored
/// densely — the paper's `F(S)` for `T = double`, support functions for
/// `T = int64_t` (Section 6), Simpson functions for `T = Rational`
/// (Section 7).
template <typename T>
class SetFunction {
 public:
  /// The all-zero function over an `n`-attribute universe.
  /// Requires 0 <= n <= kMaxSetFunctionBits (checked by `Make`).
  static Result<SetFunction<T>> Make(int n) {
    if (n < 0 || n > kMaxSetFunctionBits) {
      return Status::InvalidArgument("SetFunction supports 0..22 attributes, got " +
                                     std::to_string(n));
    }
    SetFunction<T> f;
    f.n_ = n;
    f.values_.assign(std::size_t{1} << n, T{});
    return f;
  }

  /// Universe size.
  int n() const { return n_; }
  /// Number of stored values, 2^n.
  std::size_t size() const { return values_.size(); }

  /// Value at the subset with bitmask `m`.
  const T& at(Mask m) const { return values_[m]; }
  T& at(Mask m) { return values_[m]; }
  /// Value at `s`.
  const T& at(const ItemSet& s) const { return values_[s.bits()]; }
  T& at(const ItemSet& s) { return values_[s.bits()]; }

  friend bool operator==(const SetFunction& a, const SetFunction& b) {
    return a.n_ == b.n_ && a.values_ == b.values_;
  }

 private:
  int n_ = 0;
  std::vector<T> values_;
};

/// In-place superset zeta transform: replaces `f` with
/// `g(X) = Σ_{U ⊇ X} f(U)`. O(n·2^n).
///
/// This is equation (5) of Remark 2.3: it recovers a function from its
/// density, `f(X) = Σ_{X ⊆ U ⊆ S} d(U)`.
template <typename T>
void ZetaSupersetInPlace(SetFunction<T>& f) {
  const int n = f.n();
  const std::size_t total = f.size();
  for (int i = 0; i < n; ++i) {
    const Mask bit = Mask{1} << i;
    for (std::size_t m = 0; m < total; ++m) {
      if (!(m & bit)) f.at(m) += f.at(m | bit);
    }
  }
}

/// In-place superset Möbius transform, the inverse of `ZetaSupersetInPlace`:
/// replaces `f` with `d(X) = Σ_{U ⊇ X} (-1)^{|U|-|X|} f(U)`. O(n·2^n).
///
/// This is equation (4) of Remark 2.3: the density (Möbius inverse) of `f`.
template <typename T>
void MobiusSupersetInPlace(SetFunction<T>& f) {
  const int n = f.n();
  const std::size_t total = f.size();
  for (int i = 0; i < n; ++i) {
    const Mask bit = Mask{1} << i;
    for (std::size_t m = 0; m < total; ++m) {
      if (!(m & bit)) f.at(m) -= f.at(m | bit);
    }
  }
}

/// In-place subset zeta transform: replaces `f` with
/// `g(X) = Σ_{U ⊆ X} f(U)`. O(n·2^n). The dual of `ZetaSupersetInPlace`,
/// used by the Dempster–Shafer substrate (belief from mass).
template <typename T>
void ZetaSubsetInPlace(SetFunction<T>& f) {
  const int n = f.n();
  const std::size_t total = f.size();
  for (int i = 0; i < n; ++i) {
    const Mask bit = Mask{1} << i;
    for (std::size_t m = 0; m < total; ++m) {
      if (m & bit) f.at(m) += f.at(m & ~bit);
    }
  }
}

/// In-place subset Möbius transform, the inverse of `ZetaSubsetInPlace`:
/// replaces `f` with `d(X) = Σ_{U ⊆ X} (-1)^{|X|-|U|} f(U)` (mass from
/// belief). O(n·2^n).
template <typename T>
void MobiusSubsetInPlace(SetFunction<T>& f) {
  const int n = f.n();
  const std::size_t total = f.size();
  for (int i = 0; i < n; ++i) {
    const Mask bit = Mask{1} << i;
    for (std::size_t m = 0; m < total; ++m) {
      if (m & bit) f.at(m) -= f.at(m & ~bit);
    }
  }
}

/// The density function `d_f` of `f` (Definition 2.1 / Remark 2.3).
template <typename T>
SetFunction<T> Density(const SetFunction<T>& f) {
  SetFunction<T> d = f;
  MobiusSupersetInPlace(d);
  return d;
}

/// Reconstructs `f` from its density `d` via equation (5).
template <typename T>
SetFunction<T> FromDensity(const SetFunction<T>& d) {
  SetFunction<T> f = d;
  ZetaSupersetInPlace(f);
  return f;
}

/// Reference O(4^n) implementation of the density, used to validate the
/// fast transform and as the baseline in the Möbius benchmark (experiment
/// E4).
template <typename T>
SetFunction<T> NaiveDensity(const SetFunction<T>& f) {
  SetFunction<T> d = *SetFunction<T>::Make(f.n());
  const Mask full = FullMask(f.n());
  for (Mask x = 0; x <= full; ++x) {
    T acc{};
    ForEachSuperset(x, full, [&](Mask u) {
      if ((Popcount(u) - Popcount(x)) % 2 == 0) {
        acc += f.at(u);
      } else {
        acc -= f.at(u);
      }
    });
    d.at(x) = acc;
    if (x == full) break;
  }
  return d;
}

}  // namespace diffc

#endif  // DIFFC_LATTICE_MOBIUS_H_
