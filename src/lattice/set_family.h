#ifndef DIFFC_LATTICE_SET_FAMILY_H_
#define DIFFC_LATTICE_SET_FAMILY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "lattice/itemset.h"
#include "lattice/universe.h"

namespace diffc {

/// A finite set of subsets of the universe — the `Y` of a differential
/// constraint `X -> Y` (Definition 3.1) and the argument of witness sets and
/// lattice decompositions (Definitions 2.5, 2.6).
///
/// Members are kept sorted and deduplicated, so two families with equal
/// member sets compare equal.
class SetFamily {
 public:
  /// The empty family (note: distinct from the family {∅}).
  SetFamily() = default;
  /// A family with the given members (duplicates collapse).
  explicit SetFamily(std::vector<ItemSet> members);
  /// A family of raw masks.
  static SetFamily FromMasks(const std::vector<Mask>& masks);
  /// The family of singletons {{u} | u ∈ set} — the paper's overline
  /// notation `set̄`.
  static SetFamily Singletons(ItemSet set);

  /// Number of members.
  int size() const { return static_cast<int>(members_.size()); }
  /// True iff there are no members.
  bool empty() const { return members_.empty(); }
  /// The members in sorted order.
  const std::vector<ItemSet>& members() const { return members_; }
  /// Member `i`.
  const ItemSet& member(int i) const { return members_[i]; }

  /// True iff `s` is a member (not a subset-of-member).
  bool HasMember(const ItemSet& s) const;
  /// True iff the empty set is a member.
  bool HasEmptyMember() const { return !members_.empty() && members_[0].empty(); }
  /// True iff some member is a subset of `u` — the condition that excludes
  /// `u` from a lattice decomposition (proof of Proposition 2.9).
  bool SomeMemberSubsetOf(const ItemSet& u) const;

  /// The union of all members, `∪Y`.
  ItemSet UnionOfMembers() const;

  /// The family with `s` added.
  SetFamily WithMember(const ItemSet& s) const;
  /// The family with `s` removed (no-op when absent).
  SetFamily WithoutMember(const ItemSet& s) const;
  /// The family {Y ∩ mask | Y ∈ this}.
  SetFamily IntersectMembersWith(const ItemSet& mask) const;

  /// The ⊆-minimal members. Lattice decompositions, witness-set existence
  /// and constraint satisfaction depend on the family only through this
  /// antichain.
  SetFamily Minimized() const;

  /// Renders "{M1, M2, ...}" using the universe's names.
  std::string ToString(const Universe& u) const;

  /// A hash of the member masks, suitable for unordered containers (the
  /// implication engine keys its witness-set cache on the right-hand
  /// family). Equal families hash equal because members are sorted and
  /// deduplicated.
  std::size_t Hash() const;

  friend bool operator==(const SetFamily& a, const SetFamily& b) {
    return a.members_ == b.members_;
  }
  friend bool operator!=(const SetFamily& a, const SetFamily& b) { return !(a == b); }
  friend bool operator<(const SetFamily& a, const SetFamily& b) {
    return a.members_ < b.members_;
  }

 private:
  std::vector<ItemSet> members_;
};

}  // namespace diffc

#endif  // DIFFC_LATTICE_SET_FAMILY_H_
