#ifndef DIFFC_LATTICE_INTERVAL_H_
#define DIFFC_LATTICE_INTERVAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lattice/itemset.h"

namespace diffc {

/// The interval `[X, Z] = {U | X ⊆ U ⊆ Z}` of the subset lattice (paper
/// Section 2.2). An interval with `lo ⊄ hi` is empty.
struct Interval {
  ItemSet lo;
  ItemSet hi;

  /// True iff the interval has no elements.
  bool IsEmpty() const { return !lo.IsSubsetOf(hi); }

  /// Number of elements: 2^(|hi|-|lo|) for nonempty intervals.
  std::uint64_t Size() const {
    if (IsEmpty()) return 0;
    return std::uint64_t{1} << hi.Minus(lo).size();
  }

  /// True iff `u` lies in the interval.
  bool Contains(const ItemSet& u) const { return lo.IsSubsetOf(u) && u.IsSubsetOf(hi); }

  /// All elements, lowest mask first. Requires Size() small enough to
  /// materialize.
  std::vector<ItemSet> Enumerate() const;

  /// Renders "[lo, hi]".
  std::string ToString(const Universe& u) const {
    return "[" + lo.ToString(u) + ", " + hi.ToString(u) + "]";
  }

  friend bool operator==(const Interval& a, const Interval& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

}  // namespace diffc

#endif  // DIFFC_LATTICE_INTERVAL_H_
