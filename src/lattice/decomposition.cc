#include "lattice/decomposition.h"

#include <algorithm>

#include "lattice/hitting_set.h"

namespace diffc {

bool InDecomposition(int n, const ItemSet& x, const SetFamily& family, const ItemSet& u) {
  if (!x.IsSubsetOf(u)) return false;
  if (!IsSubset(u.bits(), FullMask(n))) return false;
  return !family.SomeMemberSubsetOf(u);
}

bool DecompositionIsEmpty(const ItemSet& x, const SetFamily& family) {
  return family.SomeMemberSubsetOf(x);
}

Result<std::vector<ItemSet>> EnumerateDecomposition(int n, const ItemSet& x,
                                                    const SetFamily& family,
                                                    int max_free_bits) {
  const int free_bits = n - x.size();
  if (free_bits > max_free_bits) {
    return Status::ResourceExhausted("decomposition enumeration over " +
                                     std::to_string(free_bits) + " free attributes");
  }
  std::vector<ItemSet> out;
  ForEachSuperset(x.bits(), FullMask(n), [&](Mask u) {
    ItemSet cand(u);
    if (!family.SomeMemberSubsetOf(cand)) out.push_back(cand);
  });
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::uint64_t> CountDecomposition(int n, const ItemSet& x, const SetFamily& family,
                                         int max_free_bits) {
  const int free_bits = n - x.size();
  if (free_bits > max_free_bits) {
    return Status::ResourceExhausted("decomposition count over " +
                                     std::to_string(free_bits) + " free attributes");
  }
  std::uint64_t count = 0;
  ForEachSuperset(x.bits(), FullMask(n), [&](Mask u) {
    if (!family.SomeMemberSubsetOf(ItemSet(u))) ++count;
  });
  return count;
}

Result<std::vector<Interval>> DecompositionIntervalCover(int n, const ItemSet& x,
                                                         const SetFamily& family) {
  Result<std::vector<ItemSet>> witnesses = MinimalWitnessSets(family);
  if (!witnesses.ok()) return witnesses.status();
  std::vector<Interval> cover;
  for (const ItemSet& w : *witnesses) {
    Interval iv{x, w.ComplementIn(n)};
    if (!iv.IsEmpty()) cover.push_back(iv);
  }
  return cover;
}

}  // namespace diffc
