#include "lattice/hitting_set.h"

#include <algorithm>
#include <unordered_set>

#include "obs/metrics.h"
#include "util/failpoint.h"

namespace diffc {

namespace {

// Registry handles for the minimal-transversal search. The DFS touches only
// the local `WitnessSearchStats`; these are flushed once per call.
struct WitnessMetrics {
  obs::Counter* searches;
  obs::Counter* nodes;
  obs::Counter* candidates;
  obs::Counter* truncations;

  WitnessMetrics() {
    obs::Registry& r = obs::Registry::Global();
    searches =
        r.GetCounter("diffc_witness_searches_total", "MinimalWitnessSets() calls.");
    nodes = r.GetCounter("diffc_witness_nodes_total",
                         "Transversal search tree nodes visited.");
    candidates = r.GetCounter("diffc_witness_candidates_total",
                              "Candidate transversals emitted by the search.");
    truncations =
        r.GetCounter("diffc_witness_truncations_total",
                     "Searches aborted by the candidate budget (ResourceExhausted).");
  }
};

WitnessMetrics& Metrics() {
  static WitnessMetrics* m = new WitnessMetrics();
  return *m;
}

// Flushes one finished (or aborted) search into the registry.
void FlushSearchMetrics(const WitnessSearchStats& stats, bool truncated) {
  if (!obs::MetricsEnabled()) return;
  WitnessMetrics& m = Metrics();
  m.searches->Inc();
  if (stats.nodes > 0) m.nodes->Inc(stats.nodes);
  if (stats.candidates > 0) m.candidates->Inc(stats.candidates);
  if (truncated) m.truncations->Inc();
}

}  // namespace

bool IsWitnessSet(const SetFamily& family, const ItemSet& w) {
  if (!w.IsSubsetOf(family.UnionOfMembers())) return false;
  for (const ItemSet& m : family.members()) {
    if (m.Intersect(w).empty()) return false;
  }
  return true;
}

bool HasWitnessSet(const SetFamily& family) { return !family.HasEmptyMember(); }

Result<std::vector<ItemSet>> AllWitnessSets(const SetFamily& family, int max_union_bits) {
  std::vector<ItemSet> out;
  if (family.HasEmptyMember()) return out;  // No W can hit ∅.
  ItemSet pool = family.UnionOfMembers();
  if (pool.size() > max_union_bits) {
    return Status::ResourceExhausted("witness enumeration over " +
                                     std::to_string(pool.size()) + " items");
  }
  ForEachSubset(pool.bits(), [&](Mask w) {
    ItemSet cand(w);
    bool hits_all = true;
    for (const ItemSet& m : family.members()) {
      if (m.Intersect(cand).empty()) {
        hits_all = false;
        break;
      }
    }
    if (hits_all) out.push_back(cand);
  });
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

// Depth-first minimal-transversal enumeration. `members` is the minimized
// antichain; `chosen` hits members[0..idx). At each step, branch on the
// elements of the first member not yet hit. An element is skipped when some
// already-chosen element would become redundant, which prunes (most)
// non-minimal candidates; a final antichain filter guarantees minimality.
struct TransversalSearch {
  const std::vector<ItemSet>* members;
  std::unordered_set<Mask> seen;
  std::vector<ItemSet> results;
  std::size_t max_results;
  WitnessSearchStats stats;
  bool overflow = false;
  StopCheck* stop = nullptr;
  Status stop_status;

  void Run(ItemSet chosen, size_t idx) {
    if (overflow || !stop_status.ok()) return;
    if (stop != nullptr) {
      Status s = stop->Check();
      if (!s.ok()) {
        stop_status = std::move(s);
        return;
      }
    }
    ++stats.nodes;
    // Find the first member not hit by `chosen`.
    while (idx < members->size() && !(*members)[idx].Intersect(chosen).empty()) ++idx;
    if (idx == members->size()) {
      if (seen.insert(chosen.bits()).second) {
        if (results.size() >= max_results) {
          overflow = true;
          return;
        }
        ++stats.candidates;
        results.push_back(chosen);
      }
      return;
    }
    ForEachBit((*members)[idx].bits(),
               [&](int b) { Run(chosen.Union(ItemSet::Singleton(b)), idx + 1); });
  }
};

}  // namespace

Result<std::vector<ItemSet>> MinimalWitnessSets(const SetFamily& family,
                                                std::size_t max_results,
                                                WitnessSearchStats* stats,
                                                StopCheck* stop) {
  if (family.HasEmptyMember()) {
    FlushSearchMetrics(WitnessSearchStats{}, /*truncated=*/false);
    return std::vector<ItemSet>{};
  }
  if (DIFFC_FAILPOINT("witness/truncate")) {
    if (stats != nullptr) *stats = WitnessSearchStats{};
    FlushSearchMetrics(WitnessSearchStats{}, /*truncated=*/true);
    return Status::ResourceExhausted(
        "failpoint witness/truncate: candidate transversal budget exceeded");
  }
  SetFamily minimized = family.Minimized();
  TransversalSearch search;
  search.members = &minimized.members();
  search.max_results = max_results;
  search.stop = stop;
  search.Run(ItemSet(), 0);
  if (stats != nullptr) *stats = search.stats;
  FlushSearchMetrics(search.stats, search.overflow);
  if (!search.stop_status.ok()) return search.stop_status;
  if (search.overflow) {
    // A truncated enumeration is an error, never a partial answer: callers
    // (decomposition covers, the implication engine's witness cache) would
    // otherwise treat an incomplete transversal antichain as complete.
    return Status::ResourceExhausted("more than " + std::to_string(max_results) +
                                     " candidate transversals");
  }
  // The branch-and-extend search can emit non-minimal transversals (an early
  // choice may be subsumed by later forced choices); keep the antichain.
  std::vector<ItemSet>& cands = search.results;
  std::sort(cands.begin(), cands.end(), [](const ItemSet& a, const ItemSet& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a < b;
  });
  std::vector<ItemSet> minimal;
  for (const ItemSet& c : cands) {
    bool dominated = false;
    for (const ItemSet& m : minimal) {
      if (m.IsSubsetOf(c)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) minimal.push_back(c);
  }
  std::sort(minimal.begin(), minimal.end());
  return minimal;
}

}  // namespace diffc
