#include "lattice/set_family.h"

#include <algorithm>

namespace diffc {

SetFamily::SetFamily(std::vector<ItemSet> members) : members_(std::move(members)) {
  std::sort(members_.begin(), members_.end());
  members_.erase(std::unique(members_.begin(), members_.end()), members_.end());
}

SetFamily SetFamily::FromMasks(const std::vector<Mask>& masks) {
  std::vector<ItemSet> members;
  members.reserve(masks.size());
  for (Mask m : masks) members.push_back(ItemSet(m));
  return SetFamily(std::move(members));
}

SetFamily SetFamily::Singletons(ItemSet set) {
  std::vector<ItemSet> members;
  ForEachBit(set.bits(), [&](int b) { members.push_back(ItemSet::Singleton(b)); });
  return SetFamily(std::move(members));
}

bool SetFamily::HasMember(const ItemSet& s) const {
  return std::binary_search(members_.begin(), members_.end(), s);
}

bool SetFamily::SomeMemberSubsetOf(const ItemSet& u) const {
  for (const ItemSet& m : members_) {
    if (m.IsSubsetOf(u)) return true;
  }
  return false;
}

ItemSet SetFamily::UnionOfMembers() const {
  Mask bits = 0;
  for (const ItemSet& m : members_) bits |= m.bits();
  return ItemSet(bits);
}

SetFamily SetFamily::WithMember(const ItemSet& s) const {
  std::vector<ItemSet> members = members_;
  members.push_back(s);
  return SetFamily(std::move(members));
}

SetFamily SetFamily::WithoutMember(const ItemSet& s) const {
  std::vector<ItemSet> members;
  members.reserve(members_.size());
  for (const ItemSet& m : members_) {
    if (m != s) members.push_back(m);
  }
  return SetFamily(std::move(members));
}

SetFamily SetFamily::IntersectMembersWith(const ItemSet& mask) const {
  std::vector<ItemSet> members;
  members.reserve(members_.size());
  for (const ItemSet& m : members_) members.push_back(m.Intersect(mask));
  return SetFamily(std::move(members));
}

SetFamily SetFamily::Minimized() const {
  std::vector<ItemSet> keep;
  for (const ItemSet& m : members_) {
    bool minimal = true;
    for (const ItemSet& o : members_) {
      if (o != m && o.IsSubsetOf(m)) {
        minimal = false;
        break;
      }
    }
    if (minimal) keep.push_back(m);
  }
  return SetFamily(std::move(keep));
}

std::size_t SetFamily::Hash() const {
  // FNV-1a over the member masks.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const ItemSet& m : members_) {
    std::uint64_t v = m.bits();
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  }
  return static_cast<std::size_t>(h);
}

std::string SetFamily::ToString(const Universe& u) const {
  std::vector<Mask> masks;
  masks.reserve(members_.size());
  for (const ItemSet& m : members_) masks.push_back(m.bits());
  return u.FormatFamily(masks);
}

}  // namespace diffc
