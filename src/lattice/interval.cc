#include "lattice/interval.h"

#include <algorithm>

namespace diffc {

std::vector<ItemSet> Interval::Enumerate() const {
  std::vector<ItemSet> out;
  if (IsEmpty()) return out;
  out.reserve(Size());
  ForEachSuperset(lo.bits(), hi.bits(), [&](Mask m) { out.push_back(ItemSet(m)); });
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace diffc
