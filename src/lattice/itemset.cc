#include "lattice/itemset.h"

#include "util/text.h"

namespace diffc {

Result<ItemSet> ParseItemSet(const Universe& u, const std::string& text) {
  std::string_view body = Trim(text);
  if (body.empty()) return Status::InvalidArgument("empty item set text");
  if (body == Universe::kEmptySetText) return ItemSet();

  Mask bits = 0;
  if (body.find(',') != std::string_view::npos) {
    for (const std::string& piece : Split(body, ',')) {
      std::string name(Trim(piece));
      Result<int> idx = u.Index(name);
      if (!idx.ok()) return idx.status();
      bits |= Mask{1} << *idx;
    }
    return ItemSet(bits);
  }
  // Concatenated single-character names.
  for (char c : body) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    Result<int> idx = u.Index(std::string(1, c));
    if (!idx.ok()) return idx.status();
    bits |= Mask{1} << *idx;
  }
  return ItemSet(bits);
}

}  // namespace diffc
