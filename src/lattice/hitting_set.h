#ifndef DIFFC_LATTICE_HITTING_SET_H_
#define DIFFC_LATTICE_HITTING_SET_H_

#include <cstdint>
#include <vector>

#include "lattice/set_family.h"
#include "util/deadline.h"
#include "util/status.h"

namespace diffc {

/// Witness sets (Definition 2.5): `W` is a witness set of the family `Y`
/// iff `W ⊆ ∪Y` and `W ∩ Y ≠ ∅` for every member `Y ∈ Y`.
///
/// Witness sets of `Y` are exactly the hitting sets (transversals) of `Y`
/// drawn from `∪Y`. `W(∅) = {∅}`, and a family with an empty member has no
/// witness sets.
bool IsWitnessSet(const SetFamily& family, const ItemSet& w);

/// True iff `family` has at least one witness set (no member is empty).
bool HasWitnessSet(const SetFamily& family);

/// All witness sets of `family`, sorted by mask. Enumerates the subsets of
/// `∪Y`; returns ResourceExhausted when `|∪Y|` exceeds `max_union_bits`
/// (default 24).
Result<std::vector<ItemSet>> AllWitnessSets(const SetFamily& family,
                                            int max_union_bits = 24);

/// Work counters of a minimal-witness-set enumeration, for benchmarks and
/// the implication engine's cache statistics.
struct WitnessSearchStats {
  /// Branch-and-extend nodes visited.
  std::uint64_t nodes = 0;
  /// Candidate transversals emitted before the antichain filter.
  std::uint64_t candidates = 0;
};

/// The ⊆-minimal witness sets of `family` (the minimal transversal
/// antichain), sorted by mask. Every witness set is a superset of a minimal
/// one, so these generate the lattice decomposition's interval cover.
/// Computed by branch-and-extend over the members; `max_results` bounds the
/// output.
///
/// Truncation is never silent: when the candidate budget is exceeded the
/// result is a ResourceExhausted *error* — callers must not treat it as a
/// (partial) answer. `stats`, when non-null, receives the work counters
/// even on the error path. `stop`, when non-null, is checked (amortized) at
/// every search node; a fired deadline / cancel token aborts the search and
/// its status is returned.
Result<std::vector<ItemSet>> MinimalWitnessSets(const SetFamily& family,
                                                std::size_t max_results = 1 << 20,
                                                WitnessSearchStats* stats = nullptr,
                                                StopCheck* stop = nullptr);

}  // namespace diffc

#endif  // DIFFC_LATTICE_HITTING_SET_H_
