#ifndef DIFFC_LATTICE_ITEMSET_H_
#define DIFFC_LATTICE_ITEMSET_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>

#include "lattice/universe.h"
#include "util/bitops.h"

namespace diffc {

/// A subset of a `Universe`, a cheap value type wrapping a bitmask.
///
/// `ItemSet` is the public vocabulary type for the sets `X`, `Y`, `U`, `W`
/// of the paper; algorithms that iterate the subset lattice use the raw
/// `Mask` of an item set via `bits()`.
class ItemSet {
 public:
  /// The empty set.
  ItemSet() : bits_(0) {}
  /// The set with exactly the bits of `bits`.
  explicit ItemSet(Mask bits) : bits_(bits) {}
  /// The set containing the given attribute indices. Indices must lie in
  /// [0, 64) — `Mask{1} << 64` is undefined behavior, and before this was
  /// asserted an out-of-range index silently produced a garbage mask.
  /// Untrusted indices are validated upstream (parser, wire decoders).
  ItemSet(std::initializer_list<int> indices) : bits_(0) {
    for (int i : indices) {
      assert(i >= 0 && i < 64 && "ItemSet attribute index out of [0, 64)");
      bits_ |= Mask{1} << i;
    }
  }

  /// The underlying bitmask.
  Mask bits() const { return bits_; }
  /// Number of elements.
  int size() const { return Popcount(bits_); }
  /// True iff empty.
  bool empty() const { return bits_ == 0; }

  /// True iff attribute `i` is a member. Well-defined for every `i`: an
  /// index outside [0, 64) is simply not a member (the old unguarded shift
  /// was undefined behavior there).
  bool Contains(int i) const { return i >= 0 && i < 64 && ((bits_ >> i) & 1) != 0; }
  /// True iff this is a subset of `other`.
  bool IsSubsetOf(const ItemSet& other) const { return IsSubset(bits_, other.bits_); }

  /// Set union.
  ItemSet Union(const ItemSet& other) const { return ItemSet(bits_ | other.bits_); }
  /// Set intersection.
  ItemSet Intersect(const ItemSet& other) const { return ItemSet(bits_ & other.bits_); }
  /// Set difference (elements of this not in `other`).
  ItemSet Minus(const ItemSet& other) const { return ItemSet(bits_ & ~other.bits_); }
  /// Complement within a universe of `n` attributes.
  ItemSet ComplementIn(int n) const { return ItemSet(FullMask(n) & ~bits_); }
  /// The set {i}. Requires 0 <= i < 64 (see the index constructor).
  static ItemSet Singleton(int i) {
    assert(i >= 0 && i < 64 && "ItemSet::Singleton index out of [0, 64)");
    return ItemSet(Mask{1} << i);
  }

  /// Renders using the universe's attribute names.
  std::string ToString(const Universe& u) const { return u.FormatSet(bits_); }

  friend bool operator==(const ItemSet& a, const ItemSet& b) { return a.bits_ == b.bits_; }
  friend bool operator!=(const ItemSet& a, const ItemSet& b) { return a.bits_ != b.bits_; }
  friend bool operator<(const ItemSet& a, const ItemSet& b) { return a.bits_ < b.bits_; }

 private:
  Mask bits_;
};

/// Parses a set written with the universe's attribute names: either
/// concatenated single-character names ("ACD"), or comma-separated names
/// ("A,C,D"). `Universe::kEmptySetText` ("0") denotes the empty set.
Result<ItemSet> ParseItemSet(const Universe& u, const std::string& text);

}  // namespace diffc

template <>
struct std::hash<diffc::ItemSet> {
  size_t operator()(const diffc::ItemSet& s) const noexcept {
    return std::hash<diffc::Mask>{}(s.bits());
  }
};

#endif  // DIFFC_LATTICE_ITEMSET_H_
