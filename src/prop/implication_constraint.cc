#include "prop/implication_constraint.h"

#include "util/bitops.h"

namespace diffc::prop {

FormulaPtr ImplicationConstraintFormula(const ItemSet& x, const SetFamily& family) {
  std::vector<FormulaPtr> disjuncts;
  disjuncts.reserve(family.size());
  for (const ItemSet& member : family.members()) {
    disjuncts.push_back(Formula::AndOfVars(member.bits()));
  }
  return Formula::Implies(Formula::AndOfVars(x.bits()), Formula::Or(std::move(disjuncts)));
}

ConstraintClauseBlock TranslateImplicationConstraint(const ItemSet& x, const SetFamily& family,
                                                     int first_aux_var) {
  ConstraintClauseBlock out;
  Clause main_clause;
  ForEachBit(x.bits(), [&](int a) { main_clause.push_back(-(a + 1)); });
  for (const ItemSet& member : family.members()) {
    const int aux = first_aux_var + out.aux_vars++;
    ForEachBit(member.bits(), [&](int y) { out.clauses.push_back({-aux, y + 1}); });
    main_clause.push_back(aux);
  }
  out.clauses.push_back(std::move(main_clause));
  return out;
}

}  // namespace diffc::prop
