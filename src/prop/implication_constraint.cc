#include "prop/implication_constraint.h"

namespace diffc::prop {

FormulaPtr ImplicationConstraintFormula(const ItemSet& x, const SetFamily& family) {
  std::vector<FormulaPtr> disjuncts;
  disjuncts.reserve(family.size());
  for (const ItemSet& member : family.members()) {
    disjuncts.push_back(Formula::AndOfVars(member.bits()));
  }
  return Formula::Implies(Formula::AndOfVars(x.bits()), Formula::Or(std::move(disjuncts)));
}

}  // namespace diffc::prop
