#ifndef DIFFC_PROP_FORMULA_H_
#define DIFFC_PROP_FORMULA_H_

#include <memory>
#include <string>
#include <vector>

#include "lattice/universe.h"
#include "util/bitops.h"

namespace diffc::prop {

class Formula;
/// Formulas are immutable and shared.
using FormulaPtr = std::shared_ptr<const Formula>;

/// Node kinds of the propositional AST.
enum class FormulaKind { kConst, kVar, kNot, kAnd, kOr };

/// A propositional formula over variables identified by attribute index —
/// the fragment of Section 5, where propositional variables are the
/// attributes of the universe `S`.
///
/// Assignments are `Mask`s: bit `i` set means variable `i` is true. This is
/// exactly the paper's identification of truth assignments with subsets
/// `X ⊆ S` (Definition 5.1).
class Formula {
 public:
  /// The constant `value`.
  static FormulaPtr Const(bool value);
  /// Constant true / false.
  static FormulaPtr True() { return Const(true); }
  static FormulaPtr False() { return Const(false); }
  /// The variable with attribute index `var` (0 <= var < 64).
  static FormulaPtr Var(int var);
  /// Negation.
  static FormulaPtr Not(FormulaPtr f);
  /// Conjunction; And({}) is true.
  static FormulaPtr And(std::vector<FormulaPtr> children);
  /// Disjunction; Or({}) is false.
  static FormulaPtr Or(std::vector<FormulaPtr> children);
  /// Material implication a ⇒ b, i.e. Or(Not(a), b).
  static FormulaPtr Implies(FormulaPtr a, FormulaPtr b);
  /// The conjunction of the variables in `vars` (the paper's ∧X).
  static FormulaPtr AndOfVars(Mask vars);

  FormulaKind kind() const { return kind_; }
  /// For kConst: the constant value.
  bool const_value() const { return const_value_; }
  /// For kVar: the variable index.
  int var() const { return var_; }
  /// For kNot/kAnd/kOr: the children (kNot has exactly one).
  const std::vector<FormulaPtr>& children() const { return children_; }

  /// Evaluates under the assignment `assignment` (bit i = variable i true).
  bool Eval(Mask assignment) const;

  /// The largest variable index mentioned, or -1 for variable-free formulas.
  int MaxVar() const;

  /// Renders with the universe's attribute names, e.g. "(A & !B) | C".
  std::string ToString(const Universe& u) const;

 private:
  Formula() = default;

  FormulaKind kind_ = FormulaKind::kConst;
  bool const_value_ = false;
  int var_ = -1;
  std::vector<FormulaPtr> children_;
};

}  // namespace diffc::prop

#endif  // DIFFC_PROP_FORMULA_H_
