#ifndef DIFFC_PROP_CNF_H_
#define DIFFC_PROP_CNF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "prop/formula.h"

namespace diffc::prop {

/// A literal in DIMACS convention: variable `v` (0-based) appears as `v+1`
/// (positive) or `-(v+1)` (negative).
using Literal = int;

/// A clause: a disjunction of literals.
using Clause = std::vector<Literal>;

/// A formula in conjunctive normal form.
struct Cnf {
  /// Number of variables; literals mention variables in [0, num_vars).
  int num_vars = 0;
  /// The clauses; an empty clause makes the CNF unsatisfiable.
  std::vector<Clause> clauses;

  /// Appends a clause.
  void AddClause(Clause c) { clauses.push_back(std::move(c)); }

  /// Allocates a fresh variable and returns its index.
  int NewVar() { return num_vars++; }

  /// True iff `assignment[v]` (one bool per variable) satisfies all clauses.
  bool IsSatisfiedBy(const std::vector<bool>& assignment) const;

  /// DIMACS-like rendering, for debugging.
  std::string ToString() const;
};

/// Converts an arbitrary formula to an equisatisfiable CNF via the Tseitin
/// transformation. Variables [0, num_original_vars) of the result are the
/// formula's own variables; higher indices are auxiliary definition
/// variables. Every model of the CNF restricted to the original variables
/// satisfies the formula, and every satisfying assignment of the formula
/// extends to a model of the CNF.
Cnf TseitinTransform(const Formula& f, int num_original_vars);

}  // namespace diffc::prop

#endif  // DIFFC_PROP_CNF_H_
