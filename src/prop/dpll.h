#ifndef DIFFC_PROP_DPLL_H_
#define DIFFC_PROP_DPLL_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "prop/cnf.h"
#include "util/deadline.h"
#include "util/status.h"

namespace diffc::prop {

/// Outcome of a satisfiability call.
struct SatResult {
  /// True iff a model was found.
  bool satisfiable = false;
  /// When satisfiable: one model, indexed by variable.
  std::vector<bool> model;
};

/// Counters describing the work a solve performed.
struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
};

/// A DPLL satisfiability solver: recursive search with unit propagation and
/// a most-occurrences branching heuristic.
///
/// This is the decision procedure behind the coNP implication checker
/// (Proposition 5.5): non-implication of a differential constraint is
/// encoded as a satisfiable CNF whose model is a counterexample set `U`.
/// The solver is deliberately dependency-free and small; instances arising
/// from constraint implication have one variable per attribute plus one
/// auxiliary variable per right-hand-side member.
class DpllSolver {
 public:
  /// Creates a solver. `max_decisions` bounds the search; Solve returns
  /// ResourceExhausted when exceeded.
  explicit DpllSolver(std::uint64_t max_decisions = 50'000'000)
      : max_decisions_(max_decisions) {}

  /// Installs a cooperative stop condition, checked (amortized) at every
  /// search node; Solve returns its DeadlineExceeded / Cancelled status
  /// when it fires mid-search. Non-owning; `stop` must outlive Solve.
  /// Pass nullptr to detach.
  void set_stop(StopCheck* stop) { stop_ = stop; }

  /// Decides satisfiability of `cnf`. The returned model (when satisfiable)
  /// satisfies every clause; `Cnf::IsSatisfiedBy` re-checks it in tests.
  Result<SatResult> Solve(const Cnf& cnf);

  /// Statistics of the most recent Solve call.
  const SolverStats& stats() const { return stats_; }

 private:
  enum : std::int8_t { kUnassigned = -1, kFalse = 0, kTrue = 1 };

  bool Search(const Cnf& cnf, std::vector<std::int8_t>& assignment);
  // Applies unit propagation; returns false on conflict. Appends assigned
  // variables to `trail`.
  bool Propagate(const Cnf& cnf, std::vector<std::int8_t>& assignment,
                 std::vector<int>& trail);
  int PickBranchVariable(const Cnf& cnf, const std::vector<std::int8_t>& assignment) const;

  std::uint64_t max_decisions_;
  SolverStats stats_;
  bool budget_exceeded_ = false;
  StopCheck* stop_ = nullptr;
  Status stop_status_;
};

}  // namespace diffc::prop

#endif  // DIFFC_PROP_DPLL_H_
