#ifndef DIFFC_PROP_MINTERM_H_
#define DIFFC_PROP_MINTERM_H_

#include <vector>

#include "prop/formula.h"
#include "util/status.h"

namespace diffc::prop {

/// Minterms and minsets (Definition 5.1). A minterm `X̂` over an
/// `n`-attribute universe is the complete conjunction that is true exactly
/// under the assignment `X`; minsets identify a formula with the set of
/// assignments satisfying it.

/// The minterm formula `∧_{a∈X} a ∧ ∧_{b∉X} ¬b` over `n` variables.
FormulaPtr MintermFormula(Mask x, int n);

/// `minset(φ) = {X | X̂ ⊨ φ}`: all satisfying assignments, sorted.
/// Requires n <= max_bits (default 24); ResourceExhausted otherwise.
Result<std::vector<Mask>> Minset(const Formula& f, int n, int max_bits = 24);

/// `negminset(φ) = minset(¬φ)`: all falsifying assignments, sorted.
Result<std::vector<Mask>> NegMinset(const Formula& f, int n, int max_bits = 24);

/// Semantic entailment Φ ⊨ φ over `n` variables by minset containment:
/// `negminset(φ) ⊆ ∪_{φ'∈Φ} negminset(φ')` (Section 5). Exhaustive in 2^n.
Result<bool> Entails(const std::vector<FormulaPtr>& premises, const Formula& conclusion,
                     int n, int max_bits = 24);

}  // namespace diffc::prop

#endif  // DIFFC_PROP_MINTERM_H_
