#ifndef DIFFC_PROP_TAUTOLOGY_H_
#define DIFFC_PROP_TAUTOLOGY_H_

#include <vector>

#include "util/bitops.h"
#include "util/status.h"

namespace diffc::prop {

/// One conjunct `∧P ∧ ∧_{q∈Q} ¬q` of a DNF formula, as in the proof of
/// Proposition 5.5. A variable in both `pos` and `neg` makes the conjunct
/// contradictory.
struct DnfConjunct {
  Mask pos = 0;  ///< P: variables appearing positively.
  Mask neg = 0;  ///< Q: variables appearing negated.
};

/// A propositional formula in disjunctive normal form over `num_vars`
/// variables: the disjunction of its conjuncts. The empty DNF is false.
struct DnfFormula {
  int num_vars = 0;
  std::vector<DnfConjunct> conjuncts;

  /// Evaluates under `assignment`.
  bool Eval(Mask assignment) const;
};

/// Decides whether `f` is a tautology by refuting `¬f` with DPLL. `¬f` is
/// directly a CNF (one clause per conjunct), so no Tseitin encoding is
/// needed. The tautology problem for DNF is the canonical coNP-complete
/// problem the paper reduces from.
Result<bool> IsDnfTautology(const DnfFormula& f);

/// Exhaustive 2^n reference check, for testing the SAT path.
Result<bool> IsDnfTautologyExhaustive(const DnfFormula& f, int max_bits = 24);

/// A random DNF with `num_conjuncts` conjuncts of `literals_per_conjunct`
/// distinct literals each (random polarity). Used by the coNP benchmark
/// (experiment E2) to generate hard instances near the tautology threshold.
DnfFormula RandomDnf(int num_vars, int num_conjuncts, int literals_per_conjunct,
                     std::uint64_t seed);

}  // namespace diffc::prop

#endif  // DIFFC_PROP_TAUTOLOGY_H_
