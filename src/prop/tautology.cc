#include "prop/tautology.h"

#include <random>

#include "prop/dpll.h"

namespace diffc::prop {

bool DnfFormula::Eval(Mask assignment) const {
  for (const DnfConjunct& c : conjuncts) {
    if (IsSubset(c.pos, assignment) && (c.neg & assignment) == 0) return true;
  }
  return false;
}

Result<bool> IsDnfTautology(const DnfFormula& f) {
  // ¬f is the CNF with, per conjunct (∧P ∧ ∧¬Q), the clause (∨¬P ∨ ∨Q).
  Cnf cnf;
  cnf.num_vars = f.num_vars;
  for (const DnfConjunct& c : f.conjuncts) {
    Clause clause;
    ForEachBit(c.pos, [&](int b) { clause.push_back(-(b + 1)); });
    ForEachBit(c.neg, [&](int b) { clause.push_back(b + 1); });
    cnf.AddClause(std::move(clause));
  }
  DpllSolver solver;
  Result<SatResult> res = solver.Solve(cnf);
  if (!res.ok()) return res.status();
  return !res->satisfiable;
}

Result<bool> IsDnfTautologyExhaustive(const DnfFormula& f, int max_bits) {
  if (f.num_vars > max_bits) {
    return Status::ResourceExhausted("exhaustive tautology check over " +
                                     std::to_string(f.num_vars) + " variables");
  }
  const Mask full = FullMask(f.num_vars);
  for (Mask m = 0;; ++m) {
    if (!f.Eval(m)) return false;
    if (m == full) break;
  }
  return true;
}

DnfFormula RandomDnf(int num_vars, int num_conjuncts, int literals_per_conjunct,
                     std::uint64_t seed) {
  std::mt19937_64 engine(seed);
  std::uniform_int_distribution<int> var_dist(0, num_vars - 1);
  std::bernoulli_distribution sign_dist(0.5);
  DnfFormula f;
  f.num_vars = num_vars;
  f.conjuncts.reserve(num_conjuncts);
  for (int i = 0; i < num_conjuncts; ++i) {
    DnfConjunct c;
    int placed = 0;
    while (placed < literals_per_conjunct) {
      int v = var_dist(engine);
      Mask bit = Mask{1} << v;
      if ((c.pos | c.neg) & bit) continue;  // Distinct variables only.
      if (sign_dist(engine)) {
        c.pos |= bit;
      } else {
        c.neg |= bit;
      }
      ++placed;
    }
    f.conjuncts.push_back(c);
  }
  return f;
}

}  // namespace diffc::prop
