#include "prop/cnf.h"

#include <algorithm>
#include <cstdlib>

namespace diffc::prop {

bool Cnf::IsSatisfiedBy(const std::vector<bool>& assignment) const {
  for (const Clause& clause : clauses) {
    bool sat = false;
    for (Literal lit : clause) {
      int v = std::abs(lit) - 1;
      bool val = v < static_cast<int>(assignment.size()) && assignment[v];
      if ((lit > 0) == val) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

std::string Cnf::ToString() const {
  std::string out =
      "p cnf " + std::to_string(num_vars) + " " + std::to_string(clauses.size()) + "\n";
  for (const Clause& clause : clauses) {
    for (Literal lit : clause) out += std::to_string(lit) + " ";
    out += "0\n";
  }
  return out;
}

namespace {

// Returns a literal equivalent to `f`, adding Tseitin definition clauses to
// `cnf` as needed. `polarity_only` optimizations are intentionally not
// applied; instances in this library are small and full equivalence keeps
// the transform easy to verify.
Literal Encode(const Formula& f, Cnf& cnf) {
  switch (f.kind()) {
    case FormulaKind::kConst: {
      int v = cnf.NewVar();
      cnf.AddClause({f.const_value() ? v + 1 : -(v + 1)});
      return v + 1;
    }
    case FormulaKind::kVar:
      return f.var() + 1;
    case FormulaKind::kNot:
      return -Encode(*f.children()[0], cnf);
    case FormulaKind::kAnd: {
      std::vector<Literal> lits;
      lits.reserve(f.children().size());
      for (const FormulaPtr& c : f.children()) lits.push_back(Encode(*c, cnf));
      int v = cnf.NewVar();
      Literal out = v + 1;
      // out -> each lit; (all lits) -> out.
      Clause reverse{out};
      for (Literal lit : lits) {
        cnf.AddClause({-out, lit});
        reverse.push_back(-lit);
      }
      cnf.AddClause(std::move(reverse));
      return out;
    }
    case FormulaKind::kOr: {
      std::vector<Literal> lits;
      lits.reserve(f.children().size());
      for (const FormulaPtr& c : f.children()) lits.push_back(Encode(*c, cnf));
      int v = cnf.NewVar();
      Literal out = v + 1;
      // out -> (some lit); each lit -> out.
      Clause forward{-out};
      for (Literal lit : lits) {
        cnf.AddClause({out, -lit});
        forward.push_back(lit);
      }
      cnf.AddClause(std::move(forward));
      return out;
    }
  }
  std::abort();
}

}  // namespace

Cnf TseitinTransform(const Formula& f, int num_original_vars) {
  Cnf cnf;
  cnf.num_vars = std::max(num_original_vars, f.MaxVar() + 1);
  Literal root = Encode(f, cnf);
  cnf.AddClause({root});
  return cnf;
}

}  // namespace diffc::prop
