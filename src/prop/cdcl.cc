#include "prop/cdcl.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace diffc {
namespace prop {

namespace {

// Registry handles for the CDCL solver. The search loop only touches the
// solver's local counters; these aggregates are flushed once per Solve().
struct CdclMetrics {
  obs::Counter* solves;
  obs::Counter* decisions;
  obs::Counter* propagations;
  obs::Counter* conflicts;
  obs::Counter* learned_clauses;
  obs::Counter* restarts;

  CdclMetrics() {
    obs::Registry& r = obs::Registry::Global();
    solves = r.GetCounter("diffc_cdcl_solves_total", "CDCL Solve() calls.");
    decisions = r.GetCounter("diffc_cdcl_decisions_total", "CDCL branch decisions.");
    propagations =
        r.GetCounter("diffc_cdcl_propagations_total", "CDCL unit propagations.");
    conflicts = r.GetCounter("diffc_cdcl_conflicts_total", "CDCL conflicts analyzed.");
    learned_clauses =
        r.GetCounter("diffc_cdcl_learned_clauses_total", "Clauses learned from conflicts.");
    restarts = r.GetCounter("diffc_cdcl_restarts_total", "Solver restarts.");
  }
};

CdclMetrics& Metrics() {
  static CdclMetrics* m = new CdclMetrics();
  return *m;
}

// Flushes the per-call counters to the registry on every exit path of
// Solve() (which has many returns).
class FlushStatsOnExit {
 public:
  explicit FlushStatsOnExit(const CdclSolver* solver) : solver_(solver) {}
  ~FlushStatsOnExit() {
    if (!obs::MetricsEnabled()) return;
    CdclMetrics& m = Metrics();
    const SolverStats& s = solver_->stats();
    m.solves->Inc();
    if (s.decisions > 0) m.decisions->Inc(s.decisions);
    if (s.propagations > 0) m.propagations->Inc(s.propagations);
    if (s.conflicts > 0) m.conflicts->Inc(s.conflicts);
    if (solver_->learned_clauses() > 0) m.learned_clauses->Inc(solver_->learned_clauses());
    if (solver_->restarts() > 0) m.restarts->Inc(solver_->restarts());
  }

 private:
  const CdclSolver* solver_;
};

}  // namespace

void CdclSolver::AddWatchedClause(int clause_index) {
  const std::vector<Lit>& c = clauses_[clause_index];
  watches_[c[0]].push_back(clause_index);
  if (c.size() > 1) watches_[c[1]].push_back(clause_index);
}

void CdclSolver::Enqueue(Lit l, int reason) {
  const int var = VarOf(l);
  assignment_[var] = SignOf(l) ? kFalse : kTrue;
  saved_phase_[var] = SignOf(l);
  level_[var] = static_cast<int>(trail_limits_.size());
  reason_[var] = reason;
  trail_.push_back(l);
}

int CdclSolver::Propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit assigned = trail_[propagate_head_++];
    ++stats_.propagations;
    const Lit false_lit = Negate(assigned);  // Literals watching this are now false.
    std::vector<int>& watch_list = watches_[false_lit];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watch_list.size(); ++i) {
      const int ci = watch_list[i];
      std::vector<Lit>& c = clauses_[ci];
      // Normalize: watched literals are c[0] and c[1]; put false_lit at c[1].
      if (c.size() == 1) {
        // Unit clause re-propagated: conflict iff its literal is false.
        if (LitValue(c[0]) == kFalse) {
          for (std::size_t j = i; j < watch_list.size(); ++j) {
            watch_list[keep++] = watch_list[j];
          }
          watch_list.resize(keep);
          return ci;
        }
        watch_list[keep++] = ci;
        continue;
      }
      if (c[0] == false_lit) std::swap(c[0], c[1]);
      if (LitValue(c[0]) == kTrue) {
        watch_list[keep++] = ci;  // Clause satisfied; keep the watch.
        continue;
      }
      // Look for a replacement watch.
      bool moved = false;
      for (std::size_t k = 2; k < c.size(); ++k) {
        if (LitValue(c[k]) != kFalse) {
          std::swap(c[1], c[k]);
          watches_[c[1]].push_back(ci);
          moved = true;
          break;
        }
      }
      if (moved) continue;  // Watch moved: drop from this list.
      watch_list[keep++] = ci;
      if (LitValue(c[0]) == kFalse) {
        // Conflict: restore the remainder of the watch list first.
        for (std::size_t j = i + 1; j < watch_list.size(); ++j) {
          watch_list[keep++] = watch_list[j];
        }
        watch_list.resize(keep);
        return ci;
      }
      Enqueue(c[0], ci);  // Unit: propagate.
    }
    watch_list.resize(keep);
  }
  return -1;
}

void CdclSolver::BumpVar(int var) {
  activity_[var] += activity_increment_;
  if (activity_[var] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    activity_increment_ *= 1e-100;
  }
}

void CdclSolver::DecayActivities() { activity_increment_ /= 0.95; }

int CdclSolver::Analyze(int conflict_clause, std::vector<Lit>& learned) {
  learned.clear();
  learned.push_back(0);  // Placeholder for the asserting (UIP) literal.
  std::vector<bool> seen(num_vars_, false);
  int counter = 0;  // Literals of the current level still to resolve.
  Lit p = -1;
  int clause = conflict_clause;
  std::size_t trail_index = trail_.size();
  const int current_level = static_cast<int>(trail_limits_.size());

  while (true) {
    const std::vector<Lit>& c = clauses_[clause];
    // Skip c[0] when it is the literal we just resolved on.
    for (std::size_t i = (p == -1 ? 0 : 1); i < c.size(); ++i) {
      const Lit q = c[i];
      const int v = VarOf(q);
      if (seen[v] || level_[v] == 0) continue;
      seen[v] = true;
      BumpVar(v);
      if (level_[v] == current_level) {
        ++counter;
      } else {
        learned.push_back(q);
      }
    }
    // Find the next current-level literal on the trail to resolve.
    while (!seen[VarOf(trail_[trail_index - 1])]) --trail_index;
    --trail_index;
    p = trail_[trail_index];
    seen[VarOf(p)] = false;
    --counter;
    if (counter == 0) break;
    clause = reason_[VarOf(p)];
  }
  learned[0] = Negate(p);  // The first UIP, asserted after backjumping.

  // Backjump level: the highest level among the other learned literals.
  int backjump = 0;
  for (std::size_t i = 1; i < learned.size(); ++i) {
    backjump = std::max(backjump, level_[VarOf(learned[i])]);
  }
  // Watch invariant: learned[1] must be a highest-level literal.
  for (std::size_t i = 2; i < learned.size(); ++i) {
    if (level_[VarOf(learned[i])] > level_[VarOf(learned[1])]) {
      std::swap(learned[1], learned[i]);
    }
  }
  return backjump;
}

void CdclSolver::Backtrack(int target_level) {
  if (static_cast<int>(trail_limits_.size()) <= target_level) return;
  const std::size_t new_size = trail_limits_[target_level];
  for (std::size_t i = new_size; i < trail_.size(); ++i) {
    const int var = VarOf(trail_[i]);
    assignment_[var] = kUnassigned;
    reason_[var] = -1;
  }
  trail_.resize(new_size);
  trail_limits_.resize(target_level);
  propagate_head_ = new_size;
}

int CdclSolver::PickBranchVariable() const {
  int best = -1;
  for (int v = 0; v < num_vars_; ++v) {
    if (assignment_[v] == kUnassigned && (best == -1 || activity_[v] > activity_[best])) {
      best = v;
    }
  }
  return best;
}

Result<SatResult> CdclSolver::Solve(const Cnf& cnf) {
  stats_ = SolverStats{};
  learned_ = 0;
  restarts_ = 0;
  FlushStatsOnExit flush(this);
  num_vars_ = cnf.num_vars;
  clauses_.clear();
  watches_.assign(2 * num_vars_, {});
  assignment_.assign(num_vars_, kUnassigned);
  saved_phase_.assign(num_vars_, true);  // Prefer false, like MiniSat.
  level_.assign(num_vars_, 0);
  reason_.assign(num_vars_, -1);
  trail_.clear();
  trail_limits_.clear();
  propagate_head_ = 0;
  activity_.assign(num_vars_, 0.0);
  activity_increment_ = 1.0;

  // Load clauses: empty clause = UNSAT; duplicate literals kept (harmless);
  // tautological clauses (p ∨ ¬p) dropped.
  for (const Clause& input : cnf.clauses) {
    if (input.empty()) return SatResult{};
    std::vector<Lit> c;
    c.reserve(input.size());
    bool tautology = false;
    for (Literal lit : input) {
      if (lit == 0 || std::abs(lit) > num_vars_) {
        return Status::InvalidArgument("literal out of range in CNF");
      }
      Lit l = Encode(lit);
      if (std::find(c.begin(), c.end(), Negate(l)) != c.end()) tautology = true;
      if (std::find(c.begin(), c.end(), l) == c.end()) c.push_back(l);
    }
    if (tautology) continue;
    clauses_.push_back(std::move(c));
    AddWatchedClause(static_cast<int>(clauses_.size()) - 1);
    // Top-level units propagate immediately below.
    if (clauses_.back().size() == 1) {
      const Lit unit = clauses_.back()[0];
      if (LitValue(unit) == kFalse) return SatResult{};
      if (LitValue(unit) == kUnassigned) {
        Enqueue(unit, static_cast<int>(clauses_.size()) - 1);
      }
    }
  }
  if (Propagate() != -1) return SatResult{};

  std::uint64_t conflicts_until_restart = 100;
  std::uint64_t conflicts_since_restart = 0;

  while (true) {
    if (stop_ != nullptr) {
      Status s = stop_->Check();
      if (!s.ok()) return s;
    }
    const int conflict = Propagate();
    if (conflict != -1) {
      ++stats_.conflicts;
      ++conflicts_since_restart;
      if (stats_.conflicts > max_conflicts_) {
        return Status::ResourceExhausted("CDCL conflict budget exceeded");
      }
      if (trail_limits_.empty()) return SatResult{};  // Conflict at level 0.
      std::vector<Lit> learned;
      const int backjump = Analyze(conflict, learned);
      Backtrack(backjump);
      clauses_.push_back(learned);
      ++learned_;
      AddWatchedClause(static_cast<int>(clauses_.size()) - 1);
      Enqueue(learned[0], static_cast<int>(clauses_.size()) - 1);
      DecayActivities();
      continue;
    }
    if (conflicts_since_restart >= conflicts_until_restart) {
      conflicts_since_restart = 0;
      conflicts_until_restart = conflicts_until_restart * 3 / 2;
      ++restarts_;
      Backtrack(0);
      continue;
    }
    const int var = PickBranchVariable();
    if (var == -1) {
      SatResult result;
      result.satisfiable = true;
      result.model.resize(num_vars_);
      for (int v = 0; v < num_vars_; ++v) result.model[v] = assignment_[v] == kTrue;
      return result;
    }
    ++stats_.decisions;
    trail_limits_.push_back(static_cast<int>(trail_.size()));
    Enqueue(2 * var + (saved_phase_[var] ? 1 : 0), -1);
  }
}

}  // namespace prop
}  // namespace diffc
