#include "prop/dpll.h"

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.h"

namespace diffc::prop {

namespace {

// Literal value under a partial assignment: kTrue/kFalse/kUnassigned.
std::int8_t LitValue(Literal lit, const std::vector<std::int8_t>& assignment) {
  std::int8_t v = assignment[std::abs(lit) - 1];
  if (v < 0) return v;
  return (lit > 0) == (v == 1) ? std::int8_t{1} : std::int8_t{0};
}

// Registry handles for the DPLL solver. The hot loops only touch the local
// `stats_` struct; these aggregates are flushed once per Solve() call.
struct DpllMetrics {
  obs::Counter* solves;
  obs::Counter* decisions;
  obs::Counter* propagations;
  obs::Counter* conflicts;

  DpllMetrics() {
    obs::Registry& r = obs::Registry::Global();
    solves = r.GetCounter("diffc_dpll_solves_total", "DPLL Solve() calls.");
    decisions = r.GetCounter("diffc_dpll_decisions_total", "DPLL branch decisions.");
    propagations =
        r.GetCounter("diffc_dpll_propagations_total", "DPLL unit propagations.");
    conflicts = r.GetCounter("diffc_dpll_conflicts_total", "DPLL conflicts.");
  }
};

DpllMetrics& Metrics() {
  static DpllMetrics* m = new DpllMetrics();
  return *m;
}

// Flushes the per-call stats to the registry on every exit path of Solve().
class FlushStatsOnExit {
 public:
  explicit FlushStatsOnExit(const SolverStats* stats) : stats_(stats) {}
  ~FlushStatsOnExit() {
    if (!obs::MetricsEnabled()) return;
    DpllMetrics& m = Metrics();
    m.solves->Inc();
    if (stats_->decisions > 0) m.decisions->Inc(stats_->decisions);
    if (stats_->propagations > 0) m.propagations->Inc(stats_->propagations);
    if (stats_->conflicts > 0) m.conflicts->Inc(stats_->conflicts);
  }

 private:
  const SolverStats* stats_;
};

}  // namespace

Result<SatResult> DpllSolver::Solve(const Cnf& cnf) {
  stats_ = SolverStats{};
  FlushStatsOnExit flush(&stats_);
  budget_exceeded_ = false;
  stop_status_ = Status::Ok();
  for (const Clause& clause : cnf.clauses) {
    if (clause.empty()) return SatResult{};  // Trivially unsatisfiable.
    for (Literal lit : clause) {
      if (lit == 0 || std::abs(lit) > cnf.num_vars) {
        return Status::InvalidArgument("literal out of range in CNF");
      }
    }
  }
  std::vector<std::int8_t> assignment(cnf.num_vars, kUnassigned);
  bool sat = Search(cnf, assignment);
  if (!stop_status_.ok()) return stop_status_;
  if (budget_exceeded_) {
    return Status::ResourceExhausted("DPLL decision budget exceeded");
  }
  SatResult result;
  result.satisfiable = sat;
  if (sat) {
    result.model.resize(cnf.num_vars);
    for (int v = 0; v < cnf.num_vars; ++v) {
      // Variables untouched by the search are irrelevant; default to false.
      result.model[v] = assignment[v] == kTrue;
    }
  }
  return result;
}

bool DpllSolver::Propagate(const Cnf& cnf, std::vector<std::int8_t>& assignment,
                           std::vector<int>& trail) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Clause& clause : cnf.clauses) {
      Literal unit = 0;
      bool satisfied = false;
      int unassigned = 0;
      for (Literal lit : clause) {
        std::int8_t v = LitValue(lit, assignment);
        if (v == 1) {
          satisfied = true;
          break;
        }
        if (v == kUnassigned) {
          ++unassigned;
          unit = lit;
          if (unassigned > 1) break;
        }
      }
      if (satisfied) continue;
      if (unassigned == 0) {
        ++stats_.conflicts;
        return false;  // All literals false: conflict.
      }
      if (unassigned == 1) {
        int var = std::abs(unit) - 1;
        assignment[var] = unit > 0 ? kTrue : kFalse;
        trail.push_back(var);
        ++stats_.propagations;
        changed = true;
      }
    }
  }
  return true;
}

int DpllSolver::PickBranchVariable(const Cnf& cnf,
                                   const std::vector<std::int8_t>& assignment) const {
  // Most occurrences among clauses that are not yet satisfied.
  std::vector<int> score(cnf.num_vars, 0);
  for (const Clause& clause : cnf.clauses) {
    bool satisfied = false;
    for (Literal lit : clause) {
      if (LitValue(lit, assignment) == 1) {
        satisfied = true;
        break;
      }
    }
    if (satisfied) continue;
    for (Literal lit : clause) {
      int var = std::abs(lit) - 1;
      if (assignment[var] == kUnassigned) ++score[var];
    }
  }
  int best = -1;
  for (int v = 0; v < cnf.num_vars; ++v) {
    if (assignment[v] == kUnassigned && (best == -1 || score[v] > score[best])) best = v;
  }
  return best;
}

bool DpllSolver::Search(const Cnf& cnf, std::vector<std::int8_t>& assignment) {
  if (budget_exceeded_ || !stop_status_.ok()) return false;
  // Cooperative check-point: amortized inside StopCheck, so this is a
  // branch and a decrement on all but every 1024th node.
  if (stop_ != nullptr) {
    Status s = stop_->Check();
    if (!s.ok()) {
      stop_status_ = std::move(s);
      return false;
    }
  }
  std::vector<int> trail;
  if (!Propagate(cnf, assignment, trail)) {
    for (int v : trail) assignment[v] = kUnassigned;
    return false;
  }
  int var = PickBranchVariable(cnf, assignment);
  if (var == -1) return true;  // Complete assignment, no conflict: model.

  for (std::int8_t phase : {kTrue, kFalse}) {
    if (!stop_status_.ok()) break;
    if (++stats_.decisions > max_decisions_) {
      budget_exceeded_ = true;
      break;
    }
    assignment[var] = phase;
    if (Search(cnf, assignment)) return true;
    assignment[var] = kUnassigned;
  }
  for (int v : trail) assignment[v] = kUnassigned;
  return false;
}

}  // namespace diffc::prop
