#include "prop/formula.h"

#include <algorithm>

namespace diffc::prop {

FormulaPtr Formula::Const(bool value) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = FormulaKind::kConst;
  f->const_value_ = value;
  return f;
}

FormulaPtr Formula::Var(int var) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = FormulaKind::kVar;
  f->var_ = var;
  return f;
}

FormulaPtr Formula::Not(FormulaPtr child) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = FormulaKind::kNot;
  f->children_.push_back(std::move(child));
  return f;
}

FormulaPtr Formula::And(std::vector<FormulaPtr> children) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = FormulaKind::kAnd;
  f->children_ = std::move(children);
  return f;
}

FormulaPtr Formula::Or(std::vector<FormulaPtr> children) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = FormulaKind::kOr;
  f->children_ = std::move(children);
  return f;
}

FormulaPtr Formula::Implies(FormulaPtr a, FormulaPtr b) {
  return Or({Not(std::move(a)), std::move(b)});
}

FormulaPtr Formula::AndOfVars(Mask vars) {
  std::vector<FormulaPtr> children;
  ForEachBit(vars, [&](int b) { children.push_back(Var(b)); });
  return And(std::move(children));
}

bool Formula::Eval(Mask assignment) const {
  switch (kind_) {
    case FormulaKind::kConst:
      return const_value_;
    case FormulaKind::kVar:
      return (assignment >> var_) & 1;
    case FormulaKind::kNot:
      return !children_[0]->Eval(assignment);
    case FormulaKind::kAnd:
      for (const FormulaPtr& c : children_) {
        if (!c->Eval(assignment)) return false;
      }
      return true;
    case FormulaKind::kOr:
      for (const FormulaPtr& c : children_) {
        if (c->Eval(assignment)) return true;
      }
      return false;
  }
  return false;
}

int Formula::MaxVar() const {
  switch (kind_) {
    case FormulaKind::kConst:
      return -1;
    case FormulaKind::kVar:
      return var_;
    default: {
      int mx = -1;
      for (const FormulaPtr& c : children_) mx = std::max(mx, c->MaxVar());
      return mx;
    }
  }
}

std::string Formula::ToString(const Universe& u) const {
  switch (kind_) {
    case FormulaKind::kConst:
      return const_value_ ? "true" : "false";
    case FormulaKind::kVar:
      return u.name(var_);
    case FormulaKind::kNot:
      return "!" + children_[0]->ToString(u);
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      if (children_.empty()) return kind_ == FormulaKind::kAnd ? "true" : "false";
      std::string sep = kind_ == FormulaKind::kAnd ? " & " : " | ";
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += sep;
        out += children_[i]->ToString(u);
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

}  // namespace diffc::prop
