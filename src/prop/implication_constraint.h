#ifndef DIFFC_PROP_IMPLICATION_CONSTRAINT_H_
#define DIFFC_PROP_IMPLICATION_CONSTRAINT_H_

#include "lattice/set_family.h"
#include "prop/formula.h"

namespace diffc::prop {

/// Implication constraints (Definition 5.2): `X ⇒prop Y` denotes the
/// formula `∧X ⇒ ∨_{Y∈Y} ∧Y`.
///
/// By Proposition 5.3, `negminset(X ⇒prop Y) = L(X, Y)`: an assignment `U`
/// falsifies the formula exactly when `X ⊆ U` and no member of `Y` is
/// contained in `U`. Edge cases follow the usual conventions: an empty
/// right-hand family is the empty disjunction (false), and an empty member
/// is the empty conjunction (true), matching trivial constraints.
FormulaPtr ImplicationConstraintFormula(const ItemSet& x, const SetFamily& family);

}  // namespace diffc::prop

#endif  // DIFFC_PROP_IMPLICATION_CONSTRAINT_H_
