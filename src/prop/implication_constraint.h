#ifndef DIFFC_PROP_IMPLICATION_CONSTRAINT_H_
#define DIFFC_PROP_IMPLICATION_CONSTRAINT_H_

#include "lattice/set_family.h"
#include "prop/cnf.h"
#include "prop/formula.h"

namespace diffc::prop {

/// Implication constraints (Definition 5.2): `X ⇒prop Y` denotes the
/// formula `∧X ⇒ ∨_{Y∈Y} ∧Y`.
///
/// By Proposition 5.3, `negminset(X ⇒prop Y) = L(X, Y)`: an assignment `U`
/// falsifies the formula exactly when `X ⊆ U` and no member of `Y` is
/// contained in `U`. Edge cases follow the usual conventions: an empty
/// right-hand family is the empty disjunction (false), and an empty member
/// is the empty conjunction (true), matching trivial constraints.
FormulaPtr ImplicationConstraintFormula(const ItemSet& x, const SetFamily& family);

/// The CNF clause block of one implication constraint on the premise side
/// of Proposition 5.4, as a standalone buildable artifact: the main clause
///
///   (∨_{a∈X} ¬u_a) ∨ ∨_j aux_j
///
/// preceded by the one-sided auxiliary definitions `aux_j → ∧_{y∈Y_j} u_y`
/// (one auxiliary variable per right-hand member; one binary clause per
/// attribute of the member). One-sided definitions suffice because every
/// `aux_j` occurs positively only in the main clause.
struct ConstraintClauseBlock {
  /// Auxiliary variables consumed: `first_aux_var .. first_aux_var +
  /// aux_vars - 1`, one per right-hand member.
  int aux_vars = 0;
  /// The definition clauses followed by the main clause (always last).
  std::vector<Clause> clauses;
};

/// Builds the clause block of `x ⇒prop family` with auxiliaries numbered
/// from `first_aux_var` (1-based DIMACS-style, like every other variable).
/// Premise translations (`TranslatePremises` in `core/implication.h`) are
/// the concatenation of these blocks in premise order.
ConstraintClauseBlock TranslateImplicationConstraint(const ItemSet& x, const SetFamily& family,
                                                     int first_aux_var);

}  // namespace diffc::prop

#endif  // DIFFC_PROP_IMPLICATION_CONSTRAINT_H_
