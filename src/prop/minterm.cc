#include "prop/minterm.h"

namespace diffc::prop {

FormulaPtr MintermFormula(Mask x, int n) {
  std::vector<FormulaPtr> lits;
  for (int i = 0; i < n; ++i) {
    FormulaPtr v = Formula::Var(i);
    lits.push_back(((x >> i) & 1) ? v : Formula::Not(v));
  }
  return Formula::And(std::move(lits));
}

namespace {
Result<std::vector<Mask>> Assignments(const Formula& f, int n, int max_bits, bool want) {
  if (n > max_bits) {
    return Status::ResourceExhausted("minset enumeration over " + std::to_string(n) +
                                     " variables");
  }
  std::vector<Mask> out;
  const Mask full = FullMask(n);
  for (Mask m = 0;; ++m) {
    if (f.Eval(m) == want) out.push_back(m);
    if (m == full) break;
  }
  return out;
}
}  // namespace

Result<std::vector<Mask>> Minset(const Formula& f, int n, int max_bits) {
  return Assignments(f, n, max_bits, /*want=*/true);
}

Result<std::vector<Mask>> NegMinset(const Formula& f, int n, int max_bits) {
  return Assignments(f, n, max_bits, /*want=*/false);
}

Result<bool> Entails(const std::vector<FormulaPtr>& premises, const Formula& conclusion,
                     int n, int max_bits) {
  if (n > max_bits) {
    return Status::ResourceExhausted("entailment check over " + std::to_string(n) +
                                     " variables");
  }
  const Mask full = FullMask(n);
  for (Mask m = 0;; ++m) {
    bool all_premises = true;
    for (const FormulaPtr& p : premises) {
      if (!p->Eval(m)) {
        all_premises = false;
        break;
      }
    }
    if (all_premises && !conclusion.Eval(m)) return false;
    if (m == full) break;
  }
  return true;
}

}  // namespace diffc::prop
