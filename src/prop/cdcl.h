#ifndef DIFFC_PROP_CDCL_H_
#define DIFFC_PROP_CDCL_H_

#include <cstdint>
#include <vector>

#include "prop/cnf.h"
#include "prop/dpll.h"
#include "util/status.h"

namespace diffc {
namespace prop {

/// A conflict-driven clause-learning SAT solver: two-watched-literal
/// propagation, first-UIP conflict analysis with clause learning and
/// non-chronological backjumping, VSIDS-style activity ordering with
/// phase saving, and geometric restarts.
///
/// Functionally interchangeable with `DpllSolver` (the test suite checks
/// agreement); used by the coNP benchmark as the stronger baseline on
/// hard tautology instances. Kept dependency-free and small — this is the
/// solver a downstream user would swap for MiniSat, with the same
/// `Cnf -> SatResult` contract.
class CdclSolver {
 public:
  /// Creates a solver; `max_conflicts` bounds the search
  /// (ResourceExhausted beyond).
  explicit CdclSolver(std::uint64_t max_conflicts = 5'000'000)
      : max_conflicts_(max_conflicts) {}

  /// Installs a cooperative stop condition, checked (amortized) once per
  /// main-loop iteration; Solve returns its DeadlineExceeded / Cancelled
  /// status when it fires. Non-owning; `stop` must outlive Solve. Pass
  /// nullptr to detach.
  void set_stop(StopCheck* stop) { stop_ = stop; }

  /// Decides satisfiability of `cnf`; when satisfiable the model satisfies
  /// every clause.
  Result<SatResult> Solve(const Cnf& cnf);

  /// Statistics of the most recent Solve call. `decisions`/`conflicts`
  /// count decision and learned-conflict events; `propagations` counts
  /// implied assignments.
  const SolverStats& stats() const { return stats_; }

  /// Number of clauses learned in the most recent Solve call.
  std::uint64_t learned_clauses() const { return learned_; }
  /// Number of restarts performed in the most recent Solve call.
  std::uint64_t restarts() const { return restarts_; }

 private:
  // Internal literal encoding: 2*var for positive, 2*var+1 for negative.
  using Lit = int;
  static Lit Encode(Literal lit) {
    int var = lit > 0 ? lit - 1 : -lit - 1;
    return 2 * var + (lit < 0 ? 1 : 0);
  }
  static Lit Negate(Lit l) { return l ^ 1; }
  static int VarOf(Lit l) { return l >> 1; }
  static bool SignOf(Lit l) { return l & 1; }  // true = negative.

  enum : std::int8_t { kUnassigned = -1, kFalse = 0, kTrue = 1 };

  std::int8_t LitValue(Lit l) const {
    std::int8_t v = assignment_[VarOf(l)];
    if (v == kUnassigned) return kUnassigned;
    return (v == kTrue) != SignOf(l) ? kTrue : kFalse;
  }

  void Enqueue(Lit l, int reason);
  // Returns the index of a conflicting clause, or -1.
  int Propagate();
  // First-UIP analysis; fills `learned` (asserting literal first) and
  // returns the backjump level.
  int Analyze(int conflict_clause, std::vector<Lit>& learned);
  void Backtrack(int level);
  void BumpVar(int var);
  void DecayActivities();
  int PickBranchVariable() const;
  void AddWatchedClause(int clause_index);

  std::uint64_t max_conflicts_;
  SolverStats stats_;
  StopCheck* stop_ = nullptr;
  std::uint64_t learned_ = 0;
  std::uint64_t restarts_ = 0;

  int num_vars_ = 0;
  std::vector<std::vector<Lit>> clauses_;
  std::vector<std::vector<int>> watches_;  // Per encoded literal.
  std::vector<std::int8_t> assignment_;    // Per variable.
  std::vector<bool> saved_phase_;          // Per variable (true = negative).
  std::vector<int> level_;                 // Per variable.
  std::vector<int> reason_;                // Per variable: clause index or -1.
  std::vector<Lit> trail_;
  std::vector<int> trail_limits_;          // Trail size at each decision level.
  std::size_t propagate_head_ = 0;
  std::vector<double> activity_;
  double activity_increment_ = 1.0;
};

}  // namespace prop
}  // namespace diffc

#endif  // DIFFC_PROP_CDCL_H_
