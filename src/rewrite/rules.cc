// The builtin L(C)-preserving rewrite rules, derived from the Figure 1/2
// inference-rule schemas (`core/inference.h`) read as simplifications: where
// Figure 1 derives a new constraint from old ones, each rule here removes or
// shrinks constraints that the rest of the set already accounts for, leaving
// L(C) — and hence every implication verdict — exactly unchanged. Soundness
// arguments live in DESIGN.md §14; every rule is property-tested against a
// materialized L(C) in tests/test_rewrite.cc and fuzz/fuzz_rewrite.cc.

#include <algorithm>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "rewrite/rewrite_rule.h"

namespace diffc {
namespace rewrite {
namespace {

// Σ_{Y ∈ f} |Y| — the member-item count a merge must not increase.
std::size_t FamilyItems(const SetFamily& f) {
  std::size_t items = 0;
  for (const ItemSet& y : f.members()) items += static_cast<std::size_t>(y.size());
  return items;
}

// Triviality, read as deletion: `IsTrivial()` ⟺ some member Y ⊆ X ⟺
// L(X, Y) = ∅, so the constraint excludes nothing from the union L(C).
class DropTrivialRule : public RewriteRule {
 public:
  const char* name() const override { return "drop-trivial"; }
  std::size_t Apply(int n, ConstraintSet* c) const override {
    (void)n;  // Triviality is universe-independent.
    const std::size_t before = c->size();
    c->erase(std::remove_if(
                 c->begin(), c->end(),
                 [](const DifferentialConstraint& dc) { return dc.IsTrivial(); }),
             c->end());
    return before - c->size();
  }
};

// Member subsumption: L(X, Y) depends on Y only through SomeMemberSubsetOf,
// which is invariant under dropping ⊆-non-minimal members
// (`SetFamily::Minimized`).
class MinimizeRhsRule : public RewriteRule {
 public:
  const char* name() const override { return "minimize-rhs"; }
  std::size_t Apply(int n, ConstraintSet* c) const override {
    (void)n;  // Minimization is universe-independent.
    std::size_t removed_members = 0;
    for (DifferentialConstraint& dc : *c) {
      SetFamily minimized = dc.rhs().Minimized();
      if (minimized.size() == dc.rhs().size()) continue;
      removed_members += static_cast<std::size_t>(dc.rhs().size() - minimized.size());
      dc = DifferentialConstraint(dc.lhs(), std::move(minimized));
    }
    return removed_members;
  }
};

// Lhs-member intersection narrowing: for U ⊇ X, Y ⊆ U ⟺ Y∖X ⊆ U, so
// replacing each member Y by Y∖X preserves L(X, Y) pointwise. Nontrivial
// constraints (no Y ⊆ X) never gain an empty member.
class NarrowMembersRule : public RewriteRule {
 public:
  const char* name() const override { return "narrow-members"; }
  int min_level() const override { return 2; }
  std::size_t Apply(int n, ConstraintSet* c) const override {
    (void)n;  // Narrowing is pointwise on (lhs, member) pairs; no universe use.
    std::size_t removed_items = 0;
    for (DifferentialConstraint& dc : *c) {
      if (dc.IsTrivial()) continue;  // drop-trivial's job; keeps members nonempty.
      const ItemSet x = dc.lhs();
      std::size_t overlap = 0;
      for (const ItemSet& y : dc.rhs().members()) {
        overlap += static_cast<std::size_t>(y.Intersect(x).size());
      }
      if (overlap == 0) continue;
      std::vector<ItemSet> narrowed;
      narrowed.reserve(static_cast<std::size_t>(dc.rhs().size()));
      for (const ItemSet& y : dc.rhs().members()) narrowed.push_back(y.Minus(x));
      dc = DifferentialConstraint(x, SetFamily(std::move(narrowed)));
      removed_items += overlap;
    }
    return removed_items;
  }
};

// Exact absorption test: L(b) ⊆ L(a), decided pointwise. For U ∈ L(b) we
// have a.lhs ⊆ b.lhs ⊆ U; and if some Y_a ⊆ U were possible, the condition
// plants a member of b inside b.lhs ∪ Y_a ⊆ U, contradicting U ∈ L(b). The
// condition generalizes Figure 1 augmentation (X -> Y absorbs X∪Z -> Y) and
// addition (X -> Y absorbs X -> Y∪{Z}), and covers exact duplicates.
bool Absorbs(const DifferentialConstraint& a, const DifferentialConstraint& b) {
  if (!a.lhs().IsSubsetOf(b.lhs())) return false;
  for (const ItemSet& ya : a.rhs().members()) {
    if (!b.rhs().SomeMemberSubsetOf(b.lhs().Union(ya))) return false;
  }
  return true;
}

// Constraint subsumption: drop b when some kept a has L(b) ⊆ L(a) — then
// L(C) loses nothing. Absorption is transitive (it is L-containment on
// nontrivial constraints), so chains collapse onto their kept heads.
class AbsorbSubsumedRule : public RewriteRule {
 public:
  const char* name() const override { return "absorb-subsumed"; }
  std::size_t Apply(int n, ConstraintSet* c) const override {
    (void)n;  // Absorption compares constraints only; no universe use.
    const std::size_t count = c->size();
    std::vector<char> dropped(count, 0);
    std::size_t edits = 0;
    // Descending j keeps the earliest of mutually-absorbing constraints.
    for (std::size_t j = count; j-- > 0;) {
      for (std::size_t i = 0; i < count; ++i) {
        if (i == j || dropped[i] != 0) continue;
        if (!Absorbs((*c)[i], (*c)[j])) continue;
        dropped[j] = 1;
        ++edits;
        break;
      }
    }
    if (edits == 0) return 0;
    ConstraintSet kept;
    kept.reserve(count - edits);
    for (std::size_t i = 0; i < count; ++i) {
      if (dropped[i] == 0) kept.push_back(std::move((*c)[i]));
    }
    *c = std::move(kept);
    return edits;
  }
};

// Union rule (Figure 2), run in reverse as a merge: for equal left-hand
// sides, L(X, Y) ∪ L(X, Z) = L(X, {Y∪Z | Y ∈ Y, Z ∈ Z}) exactly — U ⊉ any
// Y and U ⊉ any Z fails iff some Y∪Z ⊆ U. Gated so the minimized cross
// family never has more members or items than the pair it replaces, which
// keeps every edit cost-decreasing.
class MergeSameLhsRule : public RewriteRule {
 public:
  const char* name() const override { return "merge-same-lhs"; }
  int min_level() const override { return 2; }
  std::size_t Apply(int n, ConstraintSet* c) const override {
    (void)n;  // Merging unions members; no universe use.
    // Equal-lhs constraints are adjacent once sorted (operator< orders by
    // lhs first); the driver keeps the set sorted between rules.
    std::sort(c->begin(), c->end());
    std::size_t merges = 0;
    for (std::size_t i = 0; i + 1 < c->size();) {
      bool merged_here = false;
      for (std::size_t j = i + 1; j < c->size() && (*c)[j].lhs() == (*c)[i].lhs(); ++j) {
        const SetFamily& fy = (*c)[i].rhs();
        const SetFamily& fz = (*c)[j].rhs();
        std::vector<ItemSet> cross;
        cross.reserve(static_cast<std::size_t>(fy.size()) *
                      static_cast<std::size_t>(fz.size()));
        for (const ItemSet& y : fy.members()) {
          for (const ItemSet& z : fz.members()) cross.push_back(y.Union(z));
        }
        SetFamily merged = SetFamily(std::move(cross)).Minimized();
        if (merged.size() > fy.size() + fz.size() ||
            FamilyItems(merged) > FamilyItems(fy) + FamilyItems(fz)) {
          continue;  // Would grow the artifact; leave the pair split.
        }
        (*c)[i] = DifferentialConstraint((*c)[i].lhs(), std::move(merged));
        c->erase(c->begin() + static_cast<std::ptrdiff_t>(j));
        ++merges;
        merged_here = true;
        break;  // Re-scan the group against the merged rhs.
      }
      if (!merged_here) ++i;
    }
    return merges;
  }
};

}  // namespace

DIFFC_REGISTER_REWRITE_RULE("drop-trivial", DropTrivialRule)
DIFFC_REGISTER_REWRITE_RULE("minimize-rhs", MinimizeRhsRule)
DIFFC_REGISTER_REWRITE_RULE("narrow-members", NarrowMembersRule)
DIFFC_REGISTER_REWRITE_RULE("absorb-subsumed", AbsorbSubsumedRule)
DIFFC_REGISTER_REWRITE_RULE("merge-same-lhs", MergeSameLhsRule)

int ForceLinkBuiltinRewriteRules() {
  return ForceLinkRewriteRule_DropTrivialRule() + ForceLinkRewriteRule_MinimizeRhsRule() +
         ForceLinkRewriteRule_NarrowMembersRule() +
         ForceLinkRewriteRule_AbsorbSubsumedRule() +
         ForceLinkRewriteRule_MergeSameLhsRule();
}

}  // namespace rewrite
}  // namespace diffc
