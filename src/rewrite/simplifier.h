#ifndef DIFFC_REWRITE_SIMPLIFIER_H_
#define DIFFC_REWRITE_SIMPLIFIER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/constraint.h"
#include "rewrite/rewrite_rule.h"

namespace diffc {
namespace rewrite {

/// Driver configuration. Level selects which registered rules run:
///
///   1 — structural rules only (`drop-trivial`, `minimize-rhs`,
///       `absorb-subsumed`): a strict superset of the PR 5 inline
///       canonicalization (drop + minimize + dedupe);
///   2 — adds the rewriting rules (`narrow-members`, `merge-same-lhs`).
///
/// "Level 0" is not a simplifier mode: `PrepareOptions::use_rewriter=false`
/// keeps the old inline path as a differential reference instead.
struct SimplifyOptions {
  int level = 2;
  /// 0 derives the pass cap from the input cost (`SimplifyPassBound`); a
  /// positive value overrides it. The driver stops at the cap even if a
  /// (contract-violating) rule failed to make progress, so Simplify always
  /// terminates.
  std::size_t max_passes = 0;
};

/// Per-invocation counters, mirrored into `PrepareStats` by the prepare
/// stage and aggregated process-wide for /statusz.
struct SimplifyStats {
  RewriteCost before;
  RewriteCost after;
  /// Fixpoint passes run, including the final confirming (edit-free) pass.
  std::size_t passes = 0;
  /// Total rule edits across all passes.
  std::size_t applied_total = 0;
  /// True iff a pass completed with zero edits within the pass cap.
  bool reached_fixpoint = false;
  /// (rule name, edit count) for every rule the level ran, in application
  /// order — the per-rule breakdown behind `diffc_rewrite_applied_total`.
  std::vector<std::pair<std::string, std::size_t>> applied_by_rule;
};

/// The automatic pass cap: 2 + the scalar potential of `before`. Every
/// pass short of fixpoint performs at least one edit and every edit
/// decreases the potential by at least 1 (DESIGN.md §14), so a fixpoint is
/// always confirmed strictly inside this bound.
std::size_t SimplifyPassBound(const RewriteCost& before);

/// Runs the registered rules at `options.level` over `c` to fixpoint and
/// returns the simplified, sorted set. L(C) — and therefore every
/// implication verdict — is preserved exactly. Idempotent: re-running on
/// the result applies nothing. `stats`, when non-null, is overwritten.
ConstraintSet Simplify(int n, ConstraintSet c, const SimplifyOptions& options,
                       SimplifyStats* stats = nullptr);

/// Process-wide simplifier totals since start, surfaced on /statusz.
struct RewriteTotals {
  std::uint64_t simplify_calls = 0;
  std::uint64_t passes = 0;
  std::uint64_t applied = 0;
  std::uint64_t constraints_removed = 0;
};
RewriteTotals GlobalRewriteTotals();

}  // namespace rewrite
}  // namespace diffc

#endif  // DIFFC_REWRITE_SIMPLIFIER_H_
