#ifndef DIFFC_REWRITE_REWRITE_RULE_H_
#define DIFFC_REWRITE_REWRITE_RULE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/constraint.h"

namespace diffc {
namespace rewrite {

/// The simplifier's cost of a constraint set: the lexicographic triple
/// (constraint count, total witness-family members, total member sizes).
/// Every rewrite rule strictly decreases this triple on each edit, which is
/// the termination argument of the fixpoint driver (DESIGN.md §14).
struct RewriteCost {
  std::size_t constraints = 0;
  /// Σ_c |rhs(c)| — total witness-family members across the set.
  std::size_t members = 0;
  /// Σ_c Σ_{Y ∈ rhs(c)} |Y| — total member sizes.
  std::size_t member_items = 0;

  /// The cost of `c`.
  static RewriteCost Of(const ConstraintSet& c);

  /// Scalar potential 65·(constraints + members) + member_items. Because a
  /// member never holds more than 64 items, every rule edit decreases the
  /// potential by at least 1 (DESIGN.md §14), so the initial potential
  /// bounds the total number of edits — and hence fixpoint passes.
  std::uint64_t Potential() const {
    return 65 * (static_cast<std::uint64_t>(constraints) + members) + member_items;
  }

  friend bool operator==(const RewriteCost& a, const RewriteCost& b) {
    return a.constraints == b.constraints && a.members == b.members &&
           a.member_items == b.member_items;
  }
  friend bool operator!=(const RewriteCost& a, const RewriteCost& b) { return !(a == b); }
  /// Lexicographic order: fewer constraints first, then members, then items.
  friend bool operator<(const RewriteCost& a, const RewriteCost& b) {
    if (a.constraints != b.constraints) return a.constraints < b.constraints;
    if (a.members != b.members) return a.members < b.members;
    return a.member_items < b.member_items;
  }
};

/// One L(C)-preserving rewrite over a constraint set, derived from the
/// Figure 1/2 inference-rule schemas (`core/inference.h`). Implementations
/// must uphold three contracts, property-tested in tests/test_rewrite.cc:
///
///   - soundness: L(C) = ∪_c L(lhs(c), rhs(c)) is preserved exactly, so
///     every implication verdict against the rewritten set equals the
///     verdict against the original;
///   - progress: every edit strictly decreases `RewriteCost` (and so the
///     scalar potential), which gives the driver its termination bound;
///   - determinism: equal inputs produce equal outputs.
class RewriteRule {
 public:
  virtual ~RewriteRule() = default;

  /// Stable kebab-case rule name — the `rule` label of
  /// `diffc_rewrite_applied_total` and the DESIGN.md §14 catalog key.
  virtual const char* name() const = 0;

  /// Exhaustively applies the rule to `*c` over an `n`-attribute universe,
  /// returning the number of edits performed (0 = no match anywhere).
  virtual std::size_t Apply(int n, ConstraintSet* c) const = 0;

  /// The lowest `SimplifyOptions::level` that runs this rule: 1 for the
  /// structural rules (drop/minimize/absorb), 2 for the rewriting ones
  /// (narrow/merge).
  virtual int min_level() const { return 1; }

  /// True iff the rule would edit `c` (applies to a copy).
  bool Matches(int n, const ConstraintSet& c) const;
};

/// One probed application: the edit count, cost before/after (the cost
/// delta of ISSUE terminology), and the rewritten set. The rule-tester and
/// fuzz harness use this to check progress without mutating their input.
struct RuleProbe {
  std::size_t edits = 0;
  RewriteCost before;
  RewriteCost after;
  ConstraintSet result;
};
RuleProbe Probe(const RewriteRule& rule, int n, const ConstraintSet& c);

/// Registers a rule under the name it reports; `rule_name` must equal
/// `rule->name()` (checked). Returns true, for static-init registration.
bool RegisterRewriteRule(const char* rule_name, std::unique_ptr<RewriteRule> rule);

/// The process-wide rule catalog, populated by static registration in
/// rules.cc (same self-registration idiom as the decision-procedure
/// registry, including the force-link anchors for static libraries).
class RewriteRuleRegistry {
 public:
  /// The global registry; forces the builtin rules to link.
  static RewriteRuleRegistry& Global();

  /// All rules, in registration (= driver application) order.
  const std::vector<const RewriteRule*>& rules() const { return rules_; }

  /// The rule with the given name, or nullptr.
  const RewriteRule* Find(const std::string& name) const;

 private:
  friend bool RegisterRewriteRule(const char* rule_name, std::unique_ptr<RewriteRule> rule);
  static RewriteRuleRegistry& Instance();

  std::vector<std::unique_ptr<RewriteRule>> owned_;
  std::vector<const RewriteRule*> rules_;
};

/// Anchor that forces the builtin-rule translation unit (rules.cc) to be
/// pulled out of the static library; called by `Global()`.
int ForceLinkBuiltinRewriteRules();

/// Defines the force-link anchor and registers `ClassName` at static-init
/// time under `rule_name` (which must match `ClassName::name()`). The
/// `rewrite-catalog` lint rule keys on this macro: every registration site
/// must be cataloged in DESIGN.md §14 and exercised in test_rewrite.cc.
#define DIFFC_REGISTER_REWRITE_RULE(rule_name, ClassName)              \
  int ForceLinkRewriteRule_##ClassName() { return 0; }                 \
  namespace {                                                          \
  [[maybe_unused]] const bool registered_##ClassName =                 \
      ::diffc::rewrite::RegisterRewriteRule(rule_name,                 \
                                            std::make_unique<ClassName>()); \
  }

}  // namespace rewrite
}  // namespace diffc

#endif  // DIFFC_REWRITE_REWRITE_RULE_H_
