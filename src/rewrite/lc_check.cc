#include "rewrite/lc_check.h"

#include <cstddef>

#include "lattice/decomposition.h"

namespace diffc {
namespace rewrite {

Result<std::vector<bool>> MaterializeLc(int n, const ConstraintSet& c) {
  if (n < 0) return Status::InvalidArgument("universe size must be non-negative");
  if (n > kMaxMaterializeN) {
    return Status::ResourceExhausted("MaterializeLc enumerates 2^n subsets; n too large");
  }
  const Mask limit = Mask{1} << n;
  std::vector<bool> in_lc(static_cast<std::size_t>(limit), false);
  for (Mask m = 0; m < limit; ++m) {
    const ItemSet u(m);
    for (const DifferentialConstraint& dc : c) {
      if (InDecomposition(n, dc.lhs(), dc.rhs(), u)) {
        in_lc[static_cast<std::size_t>(m)] = true;
        break;
      }
    }
  }
  return in_lc;
}

Result<bool> LcEquivalent(int n, const ConstraintSet& a, const ConstraintSet& b,
                          ItemSet* witness) {
  Result<std::vector<bool>> la = MaterializeLc(n, a);
  if (!la.ok()) return la.status();
  Result<std::vector<bool>> lb = MaterializeLc(n, b);
  if (!lb.ok()) return lb.status();
  for (std::size_t m = 0; m < la->size(); ++m) {
    if ((*la)[m] != (*lb)[m]) {
      if (witness != nullptr) *witness = ItemSet(static_cast<Mask>(m));
      return false;
    }
  }
  return true;
}

}  // namespace rewrite
}  // namespace diffc
