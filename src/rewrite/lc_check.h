#ifndef DIFFC_REWRITE_LC_CHECK_H_
#define DIFFC_REWRITE_LC_CHECK_H_

#include <vector>

#include "core/constraint.h"
#include "util/status.h"

namespace diffc {
namespace rewrite {

/// The largest universe `MaterializeLc` will enumerate (2^20 subsets). The
/// rule tester and fuzz harness stay well below this (n ≤ 10).
inline constexpr int kMaxMaterializeN = 20;

/// Materializes L(C) = ∪_c L(lhs(c), rhs(c)) as a bitmap indexed by subset
/// mask over all 2^n subsets of an `n`-attribute universe. This is the
/// ground truth the rewrite property tests compare against: two constraint
/// sets with equal bitmaps yield identical verdicts for every implication
/// query. Returns ResourceExhausted for n > kMaxMaterializeN and
/// InvalidArgument for n < 0.
Result<std::vector<bool>> MaterializeLc(int n, const ConstraintSet& c);

/// True iff L(a) = L(b) on the `n`-attribute universe. On inequality,
/// `witness` (when non-null) receives a subset in exactly one of the two
/// lattices. Same guards as `MaterializeLc`.
Result<bool> LcEquivalent(int n, const ConstraintSet& a, const ConstraintSet& b,
                          ItemSet* witness = nullptr);

}  // namespace rewrite
}  // namespace diffc

#endif  // DIFFC_REWRITE_LC_CHECK_H_
