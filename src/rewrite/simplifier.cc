#include "rewrite/simplifier.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <utility>

#include "obs/metrics.h"

namespace diffc {
namespace rewrite {

namespace {

// Process-wide totals for /statusz. Relaxed: monotonic counters, no
// ordering dependencies.
std::atomic<std::uint64_t> g_simplify_calls{0};
std::atomic<std::uint64_t> g_passes{0};
std::atomic<std::uint64_t> g_applied{0};
std::atomic<std::uint64_t> g_constraints_removed{0};

// Registry handles of the simplifier (`diffc_rewrite_*`), looked up once.
// The per-rule counters share one metric name with a `rule` label, in
// registry order.
struct RewriteMetrics {
  obs::Counter* simplify_calls;
  obs::Counter* passes;
  std::vector<std::pair<const RewriteRule*, obs::Counter*>> applied;

  RewriteMetrics() {
    obs::Registry& r = obs::Registry::Global();
    simplify_calls = r.GetCounter("diffc_rewrite_simplify_total",
                                  "Simplifier fixpoint-driver invocations.");
    passes = r.GetCounter("diffc_rewrite_passes_total",
                          "Fixpoint passes across all simplifier invocations.");
    for (const RewriteRule* rule : RewriteRuleRegistry::Global().rules()) {
      applied.emplace_back(
          rule, r.GetCounter("diffc_rewrite_applied_total",
                             "Rewrite-rule edits performed, labeled by rule.",
                             {{"rule", rule->name()}}));
    }
  }
};

RewriteMetrics& Metrics() {
  static RewriteMetrics* m = new RewriteMetrics();
  return *m;
}

}  // namespace

std::size_t SimplifyPassBound(const RewriteCost& before) {
  return static_cast<std::size_t>(2 + before.Potential());
}

ConstraintSet Simplify(int n, ConstraintSet c, const SimplifyOptions& options,
                       SimplifyStats* stats) {
  SimplifyStats local;
  SimplifyStats& s = stats != nullptr ? *stats : local;
  s = SimplifyStats();
  s.before = RewriteCost::Of(c);

  const int level = options.level < 1 ? 1 : options.level;
  std::vector<const RewriteRule*> active;
  for (const RewriteRule* rule : RewriteRuleRegistry::Global().rules()) {
    if (rule->min_level() <= level) active.push_back(rule);
  }
  std::vector<std::size_t> applied(active.size(), 0);

  const std::size_t pass_cap =
      options.max_passes > 0 ? options.max_passes : SimplifyPassBound(s.before);

  std::sort(c.begin(), c.end());
  RewriteCost cost = RewriteCost::Of(c);
  while (s.passes < pass_cap) {
    ++s.passes;
    std::size_t edits = 0;
    for (std::size_t i = 0; i < active.size(); ++i) {
      const std::size_t k = active[i]->Apply(n, &c);
      applied[i] += k;
      edits += k;
    }
    std::sort(c.begin(), c.end());
    if (edits == 0) {
      s.reached_fixpoint = true;
      break;
    }
    s.applied_total += edits;
    const RewriteCost next = RewriteCost::Of(c);
    assert(next < cost && "a rewrite pass with edits must strictly decrease the cost");
    cost = next;
  }
  s.after = cost;
  s.applied_by_rule.reserve(active.size());
  for (std::size_t i = 0; i < active.size(); ++i) {
    s.applied_by_rule.emplace_back(active[i]->name(), applied[i]);
  }

  g_simplify_calls.fetch_add(1, std::memory_order_relaxed);
  g_passes.fetch_add(s.passes, std::memory_order_relaxed);
  g_applied.fetch_add(s.applied_total, std::memory_order_relaxed);
  g_constraints_removed.fetch_add(s.before.constraints - s.after.constraints,
                                  std::memory_order_relaxed);

  if (obs::MetricsEnabled()) {
    RewriteMetrics& m = Metrics();
    m.simplify_calls->Inc();
    if (s.passes > 0) m.passes->Inc(s.passes);
    for (const auto& [rule, counter] : m.applied) {
      for (std::size_t i = 0; i < active.size(); ++i) {
        if (active[i] == rule && applied[i] > 0) counter->Inc(applied[i]);
      }
    }
  }
  return c;
}

RewriteTotals GlobalRewriteTotals() {
  RewriteTotals t;
  t.simplify_calls = g_simplify_calls.load(std::memory_order_relaxed);
  t.passes = g_passes.load(std::memory_order_relaxed);
  t.applied = g_applied.load(std::memory_order_relaxed);
  t.constraints_removed = g_constraints_removed.load(std::memory_order_relaxed);
  return t;
}

}  // namespace rewrite
}  // namespace diffc
