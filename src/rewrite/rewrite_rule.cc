#include "rewrite/rewrite_rule.h"

#include <cassert>
#include <cstring>
#include <utility>

namespace diffc {
namespace rewrite {

RewriteCost RewriteCost::Of(const ConstraintSet& c) {
  RewriteCost cost;
  cost.constraints = c.size();
  for (const DifferentialConstraint& dc : c) {
    cost.members += static_cast<std::size_t>(dc.rhs().size());
    for (const ItemSet& y : dc.rhs().members()) {
      cost.member_items += static_cast<std::size_t>(y.size());
    }
  }
  return cost;
}

bool RewriteRule::Matches(int n, const ConstraintSet& c) const {
  ConstraintSet copy = c;
  return Apply(n, &copy) > 0;
}

RuleProbe Probe(const RewriteRule& rule, int n, const ConstraintSet& c) {
  RuleProbe probe;
  probe.before = RewriteCost::Of(c);
  probe.result = c;
  probe.edits = rule.Apply(n, &probe.result);
  probe.after = RewriteCost::Of(probe.result);
  return probe;
}

RewriteRuleRegistry& RewriteRuleRegistry::Instance() {
  static RewriteRuleRegistry* registry = new RewriteRuleRegistry();
  return *registry;
}

RewriteRuleRegistry& RewriteRuleRegistry::Global() {
  // Referencing the anchor forces rules.cc out of the static library, so
  // the builtin rules are registered before anyone reads the catalog.
  (void)ForceLinkBuiltinRewriteRules();  // Link anchor; value unused.
  return Instance();
}

const RewriteRule* RewriteRuleRegistry::Find(const std::string& name) const {
  for (const RewriteRule* rule : rules_) {
    if (name == rule->name()) return rule;
  }
  return nullptr;
}

bool RegisterRewriteRule(const char* rule_name, std::unique_ptr<RewriteRule> rule) {
  assert(rule != nullptr);
  assert(std::strcmp(rule_name, rule->name()) == 0 &&
         "registration name must match RewriteRule::name()");
  (void)rule_name;  // Only consumed by the assert in release builds.
  RewriteRuleRegistry& registry = RewriteRuleRegistry::Instance();
  assert(registry.Find(rule->name()) == nullptr && "duplicate rewrite rule name");
  registry.rules_.push_back(rule.get());
  registry.owned_.push_back(std::move(rule));
  return true;
}

}  // namespace rewrite
}  // namespace diffc
