// Fuzzes the rewrite canonicalizer (src/rewrite/, DESIGN.md §14). The
// input bytes decode into a small universe (n in [2, 8]) and a constraint
// set; the decoded instance runs through `Simplify` at both levels with the
// properties:
//
//   1. *Termination*: the driver reaches a confirmed fixpoint within the
//      automatic pass bound (2 + the scalar potential of the input).
//   2. *Soundness*: L(C) over all 2^n subsets is bit-for-bit unchanged —
//      the materialized-lattice oracle, not a weaker structural check.
//   3. *Idempotence*: re-running on the output applies zero edits and
//      returns the identical set.
//
// Byte format (any byte string decodes; truncation just yields fewer
// constraints): byte 0 picks n; then per constraint, one lhs byte followed
// by a member-count byte (low 2 bits, + 1) and that many member bytes.
// Masks are truncated to the universe. Empty members are kept: a constraint
// whose family holds ∅ is trivially satisfied everywhere (∅ ⊆ U for every
// U), exactly the shape drop-trivial must handle.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/constraint.h"
#include "harness.h"
#include "rewrite/lc_check.h"
#include "rewrite/simplifier.h"

using namespace diffc;

namespace {

ConstraintSet DecodeInstance(const std::uint8_t* data, std::size_t size, int* n_out) {
  const int n = 2 + data[0] % 7;  // 2..8: small enough to materialize L(C).
  *n_out = n;
  const Mask full = FullMask(n);
  ConstraintSet c;
  std::size_t pos = 1;
  while (pos + 1 < size && c.size() < 16) {
    const ItemSet lhs(static_cast<Mask>(data[pos]) & full);
    const int member_count = 1 + (data[pos + 1] & 3);
    pos += 2;
    std::vector<ItemSet> members;
    for (int i = 0; i < member_count && pos < size; ++i, ++pos) {
      members.push_back(ItemSet(static_cast<Mask>(data[pos]) & full));
    }
    if (members.empty()) break;
    c.push_back(DifferentialConstraint(lhs, SetFamily(std::move(members))));
  }
  return c;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size == 0 || size > 4096) return 0;

  int n = 0;
  const ConstraintSet instance = DecodeInstance(data, size, &n);

  for (int level = 1; level <= 2; ++level) {
    rewrite::SimplifyOptions opts;
    opts.level = level;
    rewrite::SimplifyStats stats;
    const ConstraintSet out = rewrite::Simplify(n, instance, opts, &stats);

    if (!stats.reached_fixpoint) {
      fuzz::FuzzFail("termination", "no fixpoint within the pass bound at level " +
                                        std::to_string(level));
    }
    if (stats.passes > rewrite::SimplifyPassBound(stats.before)) {
      fuzz::FuzzFail("termination", "pass count exceeds the potential bound");
    }
    if (stats.before < stats.after) {
      fuzz::FuzzFail("progress", "simplified cost exceeds the input cost");
    }

    Result<bool> same = rewrite::LcEquivalent(n, instance, out);
    if (!same.ok()) {
      fuzz::FuzzFail("oracle", "L(C) materialization failed: " + same.status().ToString());
    }
    if (!*same) {
      fuzz::FuzzFail("soundness", "L(C) changed at level " + std::to_string(level) +
                                      " (n=" + std::to_string(n) + ", " +
                                      std::to_string(instance.size()) + " constraints)");
    }

    rewrite::SimplifyStats again_stats;
    const ConstraintSet again = rewrite::Simplify(n, out, opts, &again_stats);
    if (again_stats.applied_total != 0 || again != out) {
      fuzz::FuzzFail("idempotence", "re-simplification edited an already-canonical set");
    }
  }
  return 0;
}
