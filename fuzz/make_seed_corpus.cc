// Generates the seed corpora for the five fuzz targets from golden frames
// produced by the real encoders — the same messages the wire tests pin —
// so coverage starts inside the accepting region instead of spending its
// budget rediscovering the header format. Run as:
//
//   make_seed_corpus OUT_DIR
//
// writing OUT_DIR/<target>/<seed-name>. The build invokes this into the
// build tree; the committed regression corpus under fuzz/corpus/ is
// separate and append-only (minimized reproducers of fixed findings).

#include <sys/stat.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/parser.h"
#include "lattice/universe.h"
#include "net/wire.h"

using namespace diffc;
using namespace diffc::net;

namespace {

std::string g_out_root;

void WriteSeed(const std::string& target, const std::string& name,
               const std::vector<std::uint8_t>& bytes) {
  const std::string dir = g_out_root + "/" + target;
  ::mkdir(g_out_root.c_str(), 0755);
  ::mkdir(dir.c_str(), 0755);
  std::ofstream out(dir + "/" + name, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "make_seed_corpus: cannot write %s/%s\n", dir.c_str(), name.c_str());
    std::exit(1);
  }
}

void WriteText(const std::string& target, const std::string& name, const std::string& text) {
  WriteSeed(target, name, std::vector<std::uint8_t>(text.begin(), text.end()));
}

// Payload prefixed with the structure-aware targets' selector byte.
std::vector<std::uint8_t> WithSelector(std::uint8_t selector, const Frame& f) {
  std::vector<std::uint8_t> bytes;
  bytes.push_back(selector);
  bytes.insert(bytes.end(), f.payload.begin(), f.payload.end());
  return bytes;
}

TraceContext SampleTrace() {
  TraceContext t;
  t.trace_id_hi = 0x0123456789abcdefULL;
  t.trace_id_lo = 0xfedcba9876543210ULL;
  t.parent_span_id = 0x1122334455667788ULL;
  t.sampled = true;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_seed_corpus OUT_DIR\n");
    return 1;
  }
  g_out_root = argv[1];

  const Universe u = Universe::Letters(4);
  RegisterPremisesMsg reg;
  reg.n = 4;
  reg.premises = *ParseConstraintSet(u, "A -> {B}; AB -> {C, BC}");
  reg.trace = SampleTrace();

  CheckBatchMsg batch;
  batch.handle = 7;
  batch.deadline_ms = 250;
  batch.nonce = 0xdeadbeef;
  batch.n = 4;
  batch.goals = *ParseConstraintSet(u, "A -> {C}; C -> {A}; 0 -> {D}");
  batch.trace = SampleTrace();

  BatchResultMsg result;
  result.results.resize(3);
  result.results[0].verdict = 1;
  result.results[1].verdict = 2;
  result.results[1].has_counterexample = true;
  result.results[1].counterexample = 0b1010;
  result.results[2].status_code = StatusCode::kDeadlineExceeded;
  result.results[2].status_message = "query deadline exceeded";
  result.stats.queries = 3;
  result.stats.implied = 1;
  result.stats.not_implied = 1;
  result.stats.failed = 1;
  result.stats.batch_wall_ns = 123456;
  result.trace = SampleTrace();

  RegisterOkMsg reg_ok;
  reg_ok.handle = 7;
  reg_ok.canonical_constraints = 2;
  reg_ok.trace = SampleTrace();

  PingMsg ping;
  ping.nonce = 42;
  OverloadedMsg overloaded;
  overloaded.retry_after_ms = 100;
  const ErrorMsg error{StatusCode::kNotFound, "unknown handle 9"};

  // ---- read_frame: whole serialized frames (and adversarial cut-downs).
  WriteSeed("read_frame", "ping", SerializeFrame(EncodePing(ping)));
  WriteSeed("read_frame", "register_v3", SerializeFrame(EncodeRegisterPremises(reg)));
  WriteSeed("read_frame", "register_v2",
            SerializeFrame(EncodeRegisterPremises(reg, kMinWireVersion)));
  WriteSeed("read_frame", "check_batch_v3", SerializeFrame(EncodeCheckBatch(batch)));
  WriteSeed("read_frame", "batch_result_v3", SerializeFrame(EncodeBatchResult(result)));
  WriteSeed("read_frame", "error", SerializeFrame(EncodeError(error)));
  WriteSeed("read_frame", "overloaded", SerializeFrame(EncodeOverloaded(overloaded)));
  {
    // Two frames back-to-back: framing must resynchronize.
    std::vector<std::uint8_t> two = SerializeFrame(EncodePing(ping));
    const std::vector<std::uint8_t> second = SerializeFrame(EncodeCheckBatch(batch));
    two.insert(two.end(), second.begin(), second.end());
    WriteSeed("read_frame", "two_frames", two);
    // A frame cut mid-payload: must decode as truncation.
    std::vector<std::uint8_t> cut = SerializeFrame(EncodeRegisterPremises(reg));
    cut.resize(cut.size() - 3);
    WriteSeed("read_frame", "truncated_payload", cut);
  }

  // ---- request_decode: selector byte (type | version<<1) + raw payload.
  WriteSeed("request_decode", "register_v2", WithSelector(0, EncodeRegisterPremises(reg, 2)));
  WriteSeed("request_decode", "register_v3", WithSelector(2, EncodeRegisterPremises(reg)));
  WriteSeed("request_decode", "check_batch_v2", WithSelector(1, EncodeCheckBatch(batch, 2)));
  WriteSeed("request_decode", "check_batch_v3", WithSelector(3, EncodeCheckBatch(batch)));

  // ---- reply_decode: selector % 5 picks the codec; bit 3 picks v3.
  WriteSeed("reply_decode", "pong", WithSelector(0, EncodePong(ping)));
  WriteSeed("reply_decode", "register_ok_v2", WithSelector(1, EncodeRegisterOk(reg_ok, 2)));
  WriteSeed("reply_decode", "register_ok_v3", WithSelector(9, EncodeRegisterOk(reg_ok)));
  WriteSeed("reply_decode", "batch_result_v2", WithSelector(2, EncodeBatchResult(result, 2)));
  WriteSeed("reply_decode", "batch_result_v3", WithSelector(10, EncodeBatchResult(result)));
  WriteSeed("reply_decode", "overloaded", WithSelector(3, EncodeOverloaded(overloaded)));
  WriteSeed("reply_decode", "error", WithSelector(4, EncodeError(error)));

  // ---- http_head: the observability surface's real request shapes.
  WriteText("http_head", "metrics", "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  WriteText("http_head", "tracez_filtered",
            "GET /tracez?trace_id=0123456789abcdeffedcba9876543210&status=ok&min_ms=1.5&"
            "limit=8 HTTP/1.1\r\n\r\n");
  WriteText("http_head", "statusz", "GET /statusz HTTP/1.1\r\n\r\n");
  WriteText("http_head", "post", "POST /metrics HTTP/1.1\r\n\r\n");
  WriteText("http_head", "malformed", "NONSENSE\r\n\r\n");
  WriteText("http_head", "not_http", "\x16\x03\x01\x02\x00");  // TLS ClientHello prefix

  // ---- rewrite: byte 0 picks n (2 + b % 7); then per constraint an lhs
  // byte, a member-count byte (low 2 bits + 1), and the member bytes. Seeds
  // plant one redundancy per rule so coverage starts with every rule firing.
  WriteSeed("rewrite", "trivial",  // {A,B} -> {{A}} (member ⊆ lhs).
            {2, 0b0011, 0, 0b0001});
  WriteSeed("rewrite", "nested_members",  // A -> {{B}, {B,C}}: non-minimal.
            {2, 0b0001, 1, 0b0010, 0b0110});
  WriteSeed("rewrite", "lhs_overlap",  // {A,B} -> {{B,C}}: narrows to {{C}}.
            {2, 0b0011, 0, 0b0110});
  WriteSeed("rewrite", "augmented_pair",  // A -> {{C}} absorbs {A,B} -> {{C}}.
            {2, 0b0001, 0, 0b0100, 0b0011, 0, 0b0100});
  WriteSeed("rewrite", "same_lhs_pair",  // A -> {{B}}, A -> {{C}}: merges.
            {2, 0b0001, 0, 0b0010, 0b0001, 0, 0b0100});
  WriteSeed("rewrite", "empty_member",  // A -> {∅}: trivial via ∅ ⊆ U.
            {2, 0b0001, 0, 0b0000});
  WriteSeed("rewrite", "n8_mixed",  // n=8, wider masks, three constraints.
            {6, 0x0f, 1, 0xf0, 0x3c, 0x81, 0, 0x42, 0x0f, 2, 0xf0, 0x3c, 0x81});

  // ---- text_parser: leading universe-size byte + constraint text.
  WriteText("text_parser", "basic", std::string(1, 4) + "A -> {B}; AB -> {C, BC}");
  WriteText("text_parser", "empty_family", std::string(1, 4) + "AB -> {}");
  WriteText("text_parser", "zero_lhs", std::string(1, 4) + "0 -> {C}");
  WriteText("text_parser", "empty_set", std::string(1, 4));
  WriteText("text_parser", "garbage", std::string(1, 3) + "A -> -> {B}");

  std::fprintf(stderr, "make_seed_corpus: wrote seeds under %s\n", g_out_root.c_str());
  return 0;
}
