// Fuzzes the HTTP request-head parser behind /metrics, /tracez, /statusz
// and /slowz (net/http.{h,cc}), plus the query-param and trace-id parsing
// the /tracez renderer layers on top. Properties: totality (typed Status,
// no crash), and that an accepted head re-parses to the same split after
// reassembly — the parser must be a projection, not a lossy guess.

#include <cstdint>
#include <string>

#include "harness.h"
#include "net/http.h"

using namespace diffc;
using namespace diffc::net;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size > kMaxHttpHeadBytes) return 0;
  const std::string head(reinterpret_cast<const char*>(data), size);

  HttpRequestHead req;
  Status s = ParseHttpRequestHead(head, &req);
  if (!s.ok()) {
    if (s.code() != StatusCode::kNotFound && s.code() != StatusCode::kInvalidArgument) {
      fuzz::FuzzFail("typed-error",
                     "unexpected status from ParseHttpRequestHead: " + s.ToString());
    }
    return 0;
  }

  // Reassemble the request target and re-parse: the split must be stable.
  std::string target = req.path;
  if (!req.query.empty()) target += "?" + req.query;
  const std::string rebuilt = req.method + " " + target + " HTTP/1.1\r\n\r\n";
  HttpRequestHead again;
  Status s2 = ParseHttpRequestHead(rebuilt, &again);
  if (!s2.ok()) {
    fuzz::FuzzFail("re-parse", "rebuilt head rejected: " + s2.ToString());
  }
  if (again.method != req.method || again.path != req.path || again.query != req.query) {
    fuzz::FuzzFail("idempotence", "re-parse of rebuilt head differs (method/path/query)");
  }

  // The /tracez parameter surface over whatever query came through.
  const std::string trace_id = HttpQueryParam(req.query, "trace_id");
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  (void)ParseTraceId(trace_id, &hi, &lo);
  (void)HttpQueryParam(req.query, "status");
  (void)HttpQueryParam(req.query, "min_ms");
  (void)HttpQueryParam(req.query, "limit");
  return 0;
}
