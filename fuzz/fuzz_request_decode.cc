// Structure-aware fuzzing of the request decoders the server trusts least:
// REGISTER_PREMISES and CHECK_BATCH. The first input byte selects the
// (type, version) combination and the rest becomes the payload verbatim —
// the frame header is always well-formed, so coverage spends its budget
// past the header checks, inside the constraint-list and trace-context
// parsing where the interesting bounds live.

#include <cstdint>
#include <vector>

#include "harness.h"
#include "net/wire.h"

using namespace diffc;
using namespace diffc::net;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size == 0 || size - 1 > kMaxFramePayload) return 0;

  const std::uint8_t selector = data[0];
  Frame f;
  f.type = (selector & 1) != 0
               ? static_cast<std::uint8_t>(WireRequest::kCheckBatch)
               : static_cast<std::uint8_t>(WireRequest::kRegisterPremises);
  f.version = (selector & 2) != 0 ? kWireVersion : kMinWireVersion;
  f.payload.assign(data + 1, data + size);

  if (f.type == static_cast<std::uint8_t>(WireRequest::kCheckBatch)) {
    fuzz::CheckRoundTrip(f, DecodeCheckBatch, EncodeCheckBatch);
  } else {
    fuzz::CheckRoundTrip(f, DecodeRegisterPremises, EncodeRegisterPremises);
  }
  return 0;
}
