// Fuzzes `ReadFrame` — the first production code that touches bytes from
// the network — over arbitrary streams delivered through a real
// socketpair, so the recv loops, the header validation in
// `DecodeFrameHeader`, and mid-frame-EOF handling all run exactly as in
// diffcd. Frames that survive framing are handed to every decoder whose
// type byte matches, closing the loop on the full decode path.

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>

#include "harness.h"
#include "net/socket.h"
#include "net/wire.h"

using namespace diffc;
using namespace diffc::net;

namespace {

// Socketpair buffers hold ~208 KiB; capping the stream below that lets the
// writer push everything before the reader starts, so no input can hang
// the harness.
constexpr std::size_t kMaxStream = 64 * 1024;

void DecodeByType(const Frame& f) {
  switch (f.type) {
    case static_cast<std::uint8_t>(WireRequest::kPing):
      fuzz::CheckRoundTrip(f, DecodePing, fuzz::IgnoreVersion(EncodePing));
      break;
    case static_cast<std::uint8_t>(WireRequest::kRegisterPremises):
      fuzz::CheckRoundTrip(f, DecodeRegisterPremises, EncodeRegisterPremises);
      break;
    case static_cast<std::uint8_t>(WireRequest::kCheckBatch):
      fuzz::CheckRoundTrip(f, DecodeCheckBatch, EncodeCheckBatch);
      break;
    case static_cast<std::uint8_t>(WireRequest::kRelease):
      fuzz::CheckRoundTrip(f, DecodeRelease, fuzz::IgnoreVersion(EncodeRelease));
      break;
    case static_cast<std::uint8_t>(WireResponse::kPong):
      fuzz::CheckRoundTrip(f, DecodePong, fuzz::IgnoreVersion(EncodePong));
      break;
    case static_cast<std::uint8_t>(WireResponse::kRegisterOk):
      fuzz::CheckRoundTrip(f, DecodeRegisterOk, EncodeRegisterOk);
      break;
    case static_cast<std::uint8_t>(WireResponse::kBatchResult):
      fuzz::CheckRoundTrip(f, DecodeBatchResult, EncodeBatchResult);
      break;
    case static_cast<std::uint8_t>(WireResponse::kOverloaded):
      fuzz::CheckRoundTrip(f, DecodeOverloaded, fuzz::IgnoreVersion(EncodeOverloaded));
      break;
    case static_cast<std::uint8_t>(WireResponse::kError):
      fuzz::CheckRoundTrip(f, DecodeError, fuzz::IgnoreVersion(EncodeError));
      break;
    default:
      break;  // Unknown type: the session loop answers with an error frame.
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size > kMaxStream) return 0;

  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return 0;
  {
    Socket writer(fds[0]);
    Socket reader(fds[1]);
    // Entire stream lands in the socket buffer before the first read; the
    // close after makes any declared-but-missing payload a mid-frame EOF
    // (must decode as truncation, never hang or crash).
    if (size > 0 && !writer.SendAll(data, size).ok()) return 0;
    writer.Close();

    while (true) {
      Frame f;
      bool clean_eof = false;
      Status s = ReadFrame(reader, &f, &clean_eof);
      if (!s.ok()) {
        if (s.message().empty()) {
          fuzz::FuzzFail("typed-error", "ReadFrame failed with an empty message");
        }
        break;
      }
      if (clean_eof) break;
      DecodeByType(f);
    }
  }
  return 0;
}
