// Fuzzes the constraint text parser (core/parser.cc) — the format the
// diffc_client CLI and the basket-mining examples feed user text through.
// The first byte selects the universe size; the rest is parsed as a
// `;`-separated constraint set. Accepted input must survive a
// ToString-then-reparse round trip as the identical set — the parse/print
// pair is the textual analogue of the wire codecs' idempotence property.

#include <cstdint>
#include <string>

#include "core/parser.h"
#include "harness.h"
#include "lattice/universe.h"

using namespace diffc;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size == 0 || size > 64 * 1024) return 0;

  // Universe sizes 0..16 cover empty, single-letter, and multi-letter
  // regimes without making each run quadratic in attributes.
  const int n = data[0] % 17;
  const Universe u = Universe::Letters(n);
  const std::string text(reinterpret_cast<const char*>(data + 1), size - 1);

  Result<ConstraintSet> parsed = ParseConstraintSet(u, text);
  if (!parsed.ok()) {
    if (parsed.status().message().empty()) {
      fuzz::FuzzFail("typed-error", "parser rejected input with an empty message");
    }
    return 0;
  }

  const std::string printed = ConstraintSetToString(*parsed, u);
  Result<ConstraintSet> again = ParseConstraintSet(u, printed);
  if (!again.ok()) {
    fuzz::FuzzFail("re-parse", "printed set rejected: " + again.status().ToString() +
                                   " text: " + printed);
  }
  if (*again != *parsed) {
    fuzz::FuzzFail("idempotence", "reparse of printed set differs: " + printed);
  }
  return 0;
}
