// Standalone driver for the fuzz targets, used when the compiler lacks
// -fsanitize=fuzzer (gcc). Implements just enough of the libFuzzer CLI
// that the same invocations work in both modes:
//
//   fuzz_x CORPUS_DIR...              replay every file, then mutate
//   fuzz_x -runs=0 CORPUS_DIR...      replay only (the ctest regression mode)
//   fuzz_x -max_total_time=60 DIR...  time-boxed random mutation
//
// Mutation here is dumb (byte flips/splices of corpus entries under a
// deterministic PRNG) — real coverage guidance comes from the clang
// libFuzzer build in CI's fuzz-smoke job. The point of this fallback is
// that the committed regression corpus replays under ASan+UBSan in every
// toolchain, so a fixed crash stays fixed even where clang is absent.
//
// Interesting inputs have no coverage signal to be retained by, so this
// driver writes nothing back to the corpus; it only reports crashes by
// dying on them (ASan/UBSan abort or a FuzzFail abort), leaving the
// current input in ./crash-standalone for triage.

#include <dirent.h>
#include <sys/stat.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

using Input = std::vector<std::uint8_t>;

bool ReadFile(const std::string& path, Input* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  return true;
}

// Collects regular files under `path` (one level; libFuzzer corpora are
// flat), or `path` itself when it is a file.
void Collect(const std::string& path, std::vector<std::string>* files) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    std::fprintf(stderr, "driver: cannot stat %s\n", path.c_str());
    std::exit(1);
  }
  if (S_ISREG(st.st_mode)) {
    files->push_back(path);
    return;
  }
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    std::fprintf(stderr, "driver: cannot open dir %s\n", path.c_str());
    std::exit(1);
  }
  while (dirent* e = ::readdir(dir)) {
    if (e->d_name[0] == '.') continue;
    std::string child = path + "/" + e->d_name;
    struct stat cst{};
    if (::stat(child.c_str(), &cst) == 0 && S_ISREG(cst.st_mode)) {
      files->push_back(child);
    }
  }
  ::closedir(dir);
}

// Persists the dying input so a finding from the mutation loop is
// reproducible: rerun the target with ./crash-standalone as the argument.
void SaveCurrent(const Input& input) {
  std::ofstream out("crash-standalone", std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(input.data()),
            static_cast<std::streamsize>(input.size()));
}

Input Mutate(const std::vector<Input>& corpus, std::mt19937_64* rng) {
  Input m;
  if (!corpus.empty()) {
    m = corpus[(*rng)() % corpus.size()];
  }
  // 1-4 random edits: flip, insert, erase, or splice from another entry.
  const int edits = 1 + static_cast<int>((*rng)() % 4);
  for (int i = 0; i < edits; ++i) {
    switch ((*rng)() % 4) {
      case 0:  // flip / overwrite a byte
        if (!m.empty()) m[(*rng)() % m.size()] = static_cast<std::uint8_t>((*rng)());
        break;
      case 1:  // insert a byte
        m.insert(m.begin() + static_cast<std::ptrdiff_t>(m.empty() ? 0 : (*rng)() % m.size()),
                 static_cast<std::uint8_t>((*rng)()));
        break;
      case 2:  // erase a byte
        if (!m.empty()) m.erase(m.begin() + static_cast<std::ptrdiff_t>((*rng)() % m.size()));
        break;
      default: {  // splice a window from another corpus entry
        if (corpus.empty()) break;
        const Input& other = corpus[(*rng)() % corpus.size()];
        if (other.empty()) break;
        const std::size_t from = (*rng)() % other.size();
        const std::size_t len = 1 + (*rng)() % (other.size() - from);
        const std::size_t at = m.empty() ? 0 : (*rng)() % m.size();
        m.insert(m.begin() + static_cast<std::ptrdiff_t>(at), other.begin() + from,
                 other.begin() + from + len);
        break;
      }
    }
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  long runs = -1;            // -1: unset (default: mutate for max_total_time)
  long max_total_time = 30;  // seconds, matching libFuzzer's flag name
  std::uint64_t seed = 1;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-runs=", 0) == 0) {
      runs = std::strtol(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("-max_total_time=", 0) == 0) {
      max_total_time = std::strtol(arg.c_str() + 16, nullptr, 10);
    } else if (arg.rfind("-seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (!arg.empty() && arg[0] == '-') {
      // Unknown libFuzzer flag: ignore, so shared CI invocations work.
    } else {
      paths.push_back(arg);
    }
  }

  std::vector<std::string> files;
  for (const std::string& p : paths) Collect(p, &files);

  std::vector<Input> corpus;
  for (const std::string& f : files) {
    Input input;
    if (!ReadFile(f, &input)) {
      std::fprintf(stderr, "driver: cannot read %s\n", f.c_str());
      return 1;
    }
    SaveCurrent(input);
    LLVMFuzzerTestOneInput(input.data(), input.size());
    corpus.push_back(std::move(input));
  }
  std::fprintf(stderr, "driver: replayed %zu corpus file(s)\n", corpus.size());

  std::mt19937_64 rng(seed);
  long executed = 0;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(max_total_time);
  while (true) {
    if (runs >= 0 && executed >= runs) break;
    if (runs < 0 && std::chrono::steady_clock::now() >= deadline) break;
    Input input = Mutate(corpus, &rng);
    SaveCurrent(input);
    LLVMFuzzerTestOneInput(input.data(), input.size());
    ++executed;
  }
  std::fprintf(stderr, "driver: done (%ld mutated run(s), no findings)\n", executed);
  std::remove("crash-standalone");
  return 0;
}
