// Fuzzes the reply decoders exactly as `DiffcClient` uses them — a
// malicious or corrupted *server* must not be able to crash a client. The
// first input byte selects which reply codec (and wire version) sees the
// remaining bytes as its payload.

#include <cstdint>

#include "harness.h"
#include "net/wire.h"

using namespace diffc;
using namespace diffc::net;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size == 0 || size - 1 > kMaxFramePayload) return 0;

  const std::uint8_t selector = data[0];
  Frame f;
  f.version = (selector & 8) != 0 ? kWireVersion : kMinWireVersion;
  f.payload.assign(data + 1, data + size);

  switch (selector % 5) {
    case 0:
      f.type = static_cast<std::uint8_t>(WireResponse::kPong);
      fuzz::CheckRoundTrip(f, DecodePong, fuzz::IgnoreVersion(EncodePong));
      break;
    case 1:
      f.type = static_cast<std::uint8_t>(WireResponse::kRegisterOk);
      fuzz::CheckRoundTrip(f, DecodeRegisterOk, EncodeRegisterOk);
      break;
    case 2:
      f.type = static_cast<std::uint8_t>(WireResponse::kBatchResult);
      fuzz::CheckRoundTrip(f, DecodeBatchResult, EncodeBatchResult);
      break;
    case 3:
      f.type = static_cast<std::uint8_t>(WireResponse::kOverloaded);
      fuzz::CheckRoundTrip(f, DecodeOverloaded, fuzz::IgnoreVersion(EncodeOverloaded));
      break;
    default:
      f.type = static_cast<std::uint8_t>(WireResponse::kError);
      fuzz::CheckRoundTrip(f, DecodeError, fuzz::IgnoreVersion(EncodeError));
      break;
  }
  return 0;
}
