#ifndef DIFFC_FUZZ_HARNESS_H_
#define DIFFC_FUZZ_HARNESS_H_

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "net/wire.h"
#include "util/status.h"

/// Shared property vocabulary for the fuzz targets (fuzz/*.cc).
///
/// Every target's contract is the same two-part property:
///
///   1. *Totality*: a decoder fed arbitrary bytes either succeeds or
///      returns a typed `Status` — it never crashes, never reads out of
///      bounds (ASan+UBSan are the oracle for that half), and never
///      returns Ok with an unconsumed tail.
///   2. *Idempotence*: on accepted input, decode∘encode is a fixed point —
///      re-encoding the decoded message and decoding *that* must yield a
///      byte-identical second encoding. (The first encoding may differ
///      from the raw input: canonicalization such as the BatchResult
///      message-cap shrink is allowed, but it must converge in one step.)
///
/// Violations call `FuzzFail`, which aborts — libFuzzer and the
/// standalone driver both treat that as a finding and preserve the input.

namespace diffc::fuzz {

[[noreturn]] inline void FuzzFail(const char* property, const std::string& detail) {
  std::fprintf(stderr, "fuzz property violated: %s: %s\n", property, detail.c_str());
  std::abort();
}

/// Asserts the decode-then-encode idempotence property for one codec pair.
/// `decode(Frame) -> Result<Msg>`, `encode(Msg, version) -> Frame`.
template <typename Decode, typename Encode>
void CheckRoundTrip(const net::Frame& f, Decode decode, Encode encode) {
  auto m1 = decode(f);
  if (!m1.ok()) {
    if (m1.status().message().empty()) {
      FuzzFail("typed-error", "decoder rejected input with an empty message");
    }
    return;  // Rejected with a typed error: property holds.
  }
  net::Frame e1 = encode(*m1, f.version);
  auto m2 = decode(e1);
  if (!m2.ok()) {
    FuzzFail("re-decode", "decoder rejected its own encoder's output: " +
                              m2.status().ToString());
  }
  net::Frame e2 = encode(*m2, e1.version);
  if (e1.type != e2.type || e1.version != e2.version || e1.payload != e2.payload) {
    FuzzFail("idempotence", "second encoding differs from first (payload " +
                                std::to_string(e1.payload.size()) + " vs " +
                                std::to_string(e2.payload.size()) + " bytes)");
  }
}

/// Wraps a version-independent encoder in the (msg, version) shape
/// `CheckRoundTrip` expects.
template <typename Encode>
auto IgnoreVersion(Encode encode) {
  return [encode](const auto& msg, std::uint8_t) { return encode(msg); };
}

}  // namespace diffc::fuzz

#endif  // DIFFC_FUZZ_HARNESS_H_
