// Experiment E1 — implication-checker scaling (Theorem 3.5 vs
// Proposition 5.4): the exhaustive lattice-containment checker is
// exponential in the number of free attributes, while the SAT-based
// procedure scales with formula size on typical instances. The table shows
// the crossover; the benchmarks measure both deciders across universe size
// and constraint-set size.

// Experiment E2 — batched implication engine vs the sequential front door:
// a 1000-query batch re-validating derived constraints (repeated right-hand
// families, shared premises) through `ImplicationEngine`, which amortizes
// witness-set enumeration and premise translation across the batch.

// Experiment E3 — cost and output of the observability layer: the E2 batch
// with metrics disabled / enabled / enabled+tracing (interleaved
// min-of-trials), the deadline-slack distribution from an adversarial
// deadline run, per-procedure latency histograms, and the full metrics
// snapshot, all recorded in BENCH_E3.json (validated against
// bench/BENCH_E3.schema.json in CI).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/implication.h"
#include "engine/caches.h"
#include "engine/implication_engine.h"
#include "obs/event_log.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "prop/tautology.h"
#include "util/random.h"

namespace diffc {
namespace {

DifferentialConstraint RandomConstraint(Rng& rng, int n, int members) {
  ItemSet lhs(rng.RandomMask(n, 2.0 / n));
  std::vector<ItemSet> family;
  for (int i = 0; i < members; ++i) {
    Mask m = rng.RandomMask(n, 2.0 / n);
    if (m == 0) m = Mask{1} << rng.UniformInt(0, n - 1);
    family.push_back(ItemSet(m));
  }
  return DifferentialConstraint(lhs, SetFamily(std::move(family)));
}

ConstraintSet RandomSet(Rng& rng, int n, int count) {
  ConstraintSet out;
  for (int i = 0; i < count; ++i) out.push_back(RandomConstraint(rng, n, 2));
  return out;
}

double MeasureMs(const std::function<void()>& fn, int reps) {
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count() / reps;
}

void PrintScalingTable() {
  std::printf("=== E1: implication deciders vs universe size (|C|=6, 20 queries) ===\n");
  std::printf("%6s %16s %16s %10s\n", "n", "exhaustive(ms)", "sat(ms)", "agree");
  for (int n : {8, 12, 16, 20, 24}) {
    Rng rng(n * 131);
    ConstraintSet premises = RandomSet(rng, n, 6);
    std::vector<DifferentialConstraint> goals;
    for (int i = 0; i < 20; ++i) goals.push_back(RandomConstraint(rng, n, 2));

    bool all_agree = true;
    double ex_ms = MeasureMs(
        [&] {
          for (const DifferentialConstraint& g : goals) {
            (void)CheckImplicationExhaustive(n, premises, g);
          }
        },
        1);
    double sat_ms = MeasureMs(
        [&] {
          for (const DifferentialConstraint& g : goals) {
            (void)CheckImplicationSat(n, premises, g);
          }
        },
        1);
    for (const DifferentialConstraint& g : goals) {
      Result<ImplicationOutcome> a = CheckImplicationExhaustive(n, premises, g);
      Result<ImplicationOutcome> b = CheckImplicationSat(n, premises, g);
      if (!a.ok() || !b.ok() || a->implied != b->implied) all_agree = false;
    }
    std::printf("%6d %16.3f %16.3f %10s\n", n, ex_ms, sat_ms, all_agree ? "yes" : "NO");
  }
  std::printf("\n=== E1b: SAT decider vs |C| (n=32) ===\n");
  std::printf("%6s %16s\n", "|C|", "sat(ms)");
  for (int count : {2, 8, 32, 128}) {
    Rng rng(count * 17 + 3);
    const int n = 32;
    ConstraintSet premises = RandomSet(rng, n, count);
    std::vector<DifferentialConstraint> goals;
    for (int i = 0; i < 20; ++i) goals.push_back(RandomConstraint(rng, n, 2));
    double sat_ms = MeasureMs(
        [&] {
          for (const DifferentialConstraint& g : goals) {
            (void)CheckImplicationSat(n, premises, g);
          }
        },
        1);
    std::printf("%6d %16.3f\n", count, sat_ms);
  }
  std::printf("\n");
}

// The E2 workload: a service re-validating derived constraints. Most goals
// are augmented premises (right-hand family repeated from a premise, widened
// left-hand side); the rest are fresh random queries that need SAT.
void MakeBatchWorkload(int n, int num_queries, ConstraintSet* premises,
                       std::vector<DifferentialConstraint>* goals) {
  Rng rng(12345);
  *premises = RandomSet(rng, n, 8);
  goals->clear();
  goals->reserve(num_queries);
  for (int i = 0; i < num_queries; ++i) {
    if (i % 10 != 9) {
      const DifferentialConstraint& p = (*premises)[i % premises->size()];
      goals->push_back(DifferentialConstraint(
          p.lhs().Union(ItemSet(rng.RandomMask(n, 2.0 / n))), p.rhs()));
    } else {
      goals->push_back(RandomConstraint(rng, n, 2));
    }
  }
}

// The adversarial deadline workload: pigeonhole DNF tautologies through the
// Proposition 5.5 reduction. The interval cover is inconclusive on them, so
// every query is pinned to DPLL and genuinely exceeds a ~10ms deadline.
prop::DnfFormula PigeonholeDnf(int holes) {
  prop::DnfFormula f;
  f.num_vars = (holes + 1) * holes;
  auto var = [&](int pigeon, int hole) { return pigeon * holes + hole; };
  for (int i = 0; i <= holes; ++i) {
    prop::DnfConjunct c;
    for (int k = 0; k < holes; ++k) c.neg |= Mask{1} << var(i, k);
    f.conjuncts.push_back(c);
  }
  for (int i = 0; i <= holes; ++i)
    for (int j = i + 1; j <= holes; ++j)
      for (int k = 0; k < holes; ++k) {
        prop::DnfConjunct c;
        c.pos = (Mask{1} << var(i, k)) | (Mask{1} << var(j, k));
        f.conjuncts.push_back(c);
      }
  return f;
}

void PrintBatchEngineTable() {
  std::printf(
      "=== E2: batched engine vs sequential front door (n=32, |C|=8, 1000 queries) ===\n");
  const int n = 32;
  ConstraintSet premises;
  std::vector<DifferentialConstraint> goals;
  MakeBatchWorkload(n, 1000, &premises, &goals);

  std::vector<bool> sequential_verdicts;
  double seq_ms = MeasureMs(
      [&] {
        sequential_verdicts.clear();
        for (const DifferentialConstraint& g : goals) {
          Result<ImplicationOutcome> r = CheckImplication(n, premises, g);
          sequential_verdicts.push_back(r.ok() && r->implied);
        }
      },
      1);

  GlobalWitnessSetCache().Clear();
  GlobalPreparedPremisesCache().Clear();
  EngineOptions opts;
  opts.num_threads = 4;
  ImplicationEngine engine(opts);
  Result<BatchOutcome> batch = Status::InvalidArgument("not yet run");
  double engine_ms = MeasureMs([&] { batch = engine.CheckBatch(n, premises, goals); }, 1);

  bool all_agree = batch.ok();
  if (batch.ok()) {
    for (std::size_t i = 0; i < goals.size(); ++i) {
      const EngineQueryResult& r = batch->results[i];
      if (!r.status.ok() || r.outcome.implied != sequential_verdicts[i]) all_agree = false;
    }
  }

  std::printf("%22s %12s %10s %10s\n", "", "batch(ms)", "speedup", "agree");
  std::printf("%22s %12.3f %10s %10s\n", "sequential loop", seq_ms, "1.00x", "-");
  std::printf("%22s %12.3f %9.2fx %10s\n", "engine (4 workers)", engine_ms,
              engine_ms > 0 ? seq_ms / engine_ms : 0.0, all_agree ? "yes" : "NO");
  if (batch.ok()) std::printf("engine stats: %s\n", batch->stats.ToString().c_str());

  // Deadline-check overhead: the same hot-cache batch with no deadline vs a
  // deadline generous enough to never fire — the difference is purely the
  // amortized clock sampling inside the solvers.
  // Interleaved min-of-trials: the hot-cache batch is ~1ms, so scheduler
  // noise dwarfs a single measurement.
  const int kOverheadReps = 5;
  const int kOverheadTrials = 8;
  auto make_engine = [&](std::chrono::nanoseconds per_query) {
    EngineOptions o;
    o.num_threads = 4;
    o.per_query_deadline = per_query;
    return std::make_unique<ImplicationEngine>(o);
  };
  auto plain = make_engine(std::chrono::nanoseconds(0));
  auto guarded = make_engine(std::chrono::hours(1));
  (void)plain->CheckBatch(n, premises, goals);  // Warm the caches.
  (void)guarded->CheckBatch(n, premises, goals);
  double no_deadline_ms = 1e100, generous_ms = 1e100;
  for (int t = 0; t < kOverheadTrials; ++t) {
    no_deadline_ms = std::min(
        no_deadline_ms,
        MeasureMs([&] { (void)plain->CheckBatch(n, premises, goals); }, kOverheadReps));
    generous_ms = std::min(
        generous_ms,
        MeasureMs([&] { (void)guarded->CheckBatch(n, premises, goals); }, kOverheadReps));
  }
  double overhead_pct =
      no_deadline_ms > 0 ? (generous_ms / no_deadline_ms - 1.0) * 100.0 : 0.0;
  std::printf("deadline-check overhead: no-deadline %.3fms, generous-deadline %.3fms "
              "(%+.2f%%)\n",
              no_deadline_ms, generous_ms, overhead_pct);

  // Adversarial deadline run: 200 pigeonhole queries that each want ~25ms
  // of DPLL under a 10ms per-query deadline and kDegrade.
  const int kPhpHoles = 6;
  prop::DnfFormula php = PigeonholeDnf(kPhpHoles);
  ConstraintSet php_premises = DnfTautologyReduction(php);
  const std::size_t kAdversarialQueries = 200;
  std::vector<DifferentialConstraint> php_goals(kAdversarialQueries, TautologyGoal());
  EngineOptions adv;
  adv.num_threads = 4;
  adv.per_query_deadline = std::chrono::milliseconds(10);
  adv.batch_deadline = std::chrono::seconds(1);
  adv.exhaustion_policy = ExhaustionPolicy::kDegrade;
  ImplicationEngine adv_engine(adv);
  Result<BatchOutcome> adv_out = Status::InvalidArgument("not yet run");
  double adv_ms = MeasureMs(
      [&] { adv_out = adv_engine.CheckBatch(php.num_vars, php_premises, php_goals); }, 1);
  if (adv_out.ok()) {
    std::printf("adversarial deadlines (PHP(%d,%d), 10ms/query, degrade): %.1fms, %s\n",
                kPhpHoles + 1, kPhpHoles, adv_ms, adv_out->stats.ToString().c_str());
  }
  std::printf("\n");

  // Machine-readable record of the experiment, for CI artifacts.
  std::ofstream json("BENCH_E2.json");
  json << "{\n";
  json << "  \"experiment\": \"E2\",\n";
  json << "  \"n\": " << n << ",\n";
  json << "  \"queries\": " << goals.size() << ",\n";
  json << "  \"threads\": " << opts.num_threads << ",\n";
  json << "  \"sequential_ms\": " << seq_ms << ",\n";
  json << "  \"engine_ms\": " << engine_ms << ",\n";
  json << "  \"speedup\": " << (engine_ms > 0 ? seq_ms / engine_ms : 0.0) << ",\n";
  json << "  \"verdicts_agree\": " << (all_agree ? "true" : "false") << ",\n";
  if (batch.ok()) {
    const BatchStats& s = batch->stats;
    json << "  \"procedure_mix\": {\"trivial\": " << s.by_trivial
         << ", \"fd\": " << s.by_fd << ", \"interval_cover\": " << s.by_interval_cover
         << ", \"sat\": " << s.by_sat << ", \"exhaustive\": " << s.by_exhaustive
         << "},\n";
    json << "  \"cache\": {\"witness_hits\": " << s.witness_cache_hits
         << ", \"witness_misses\": " << s.witness_cache_misses
         << ", \"premise_hits\": " << s.premise_cache_hits
         << ", \"premise_misses\": " << s.premise_cache_misses << "},\n";
  }
  json << "  \"deadline_overhead\": {\"reps\": " << kOverheadReps
       << ", \"no_deadline_ms\": " << no_deadline_ms
       << ", \"generous_deadline_ms\": " << generous_ms
       << ", \"overhead_pct\": " << overhead_pct << "},\n";
  json << "  \"adversarial_deadline\": {\"queries\": " << kAdversarialQueries
       << ", \"per_query_deadline_ms\": 10, \"policy\": \"degrade\", \"batch_ms\": "
       << adv_ms;
  if (adv_out.ok()) {
    const BatchStats& s = adv_out->stats;
    json << ", \"degraded\": " << s.degraded << ", \"timed_out\": " << s.timed_out
         << ", \"escalations\": " << s.escalations << ", \"cancelled\": " << s.cancelled
         << ", \"failed\": " << s.failed;
  }
  json << "}\n";
  json << "}\n";
  std::printf("wrote BENCH_E2.json\n\n");
}

// One histogram as a JSON object: {"bounds": [...], "counts": [...],
// "count": N, "sum": X}. Counts are non-cumulative with +Inf last, matching
// `obs::RenderJson`.
std::string HistogramJson(const obs::HistogramSample& h) {
  std::string out = "{\"bounds\": [";
  for (std::size_t i = 0; i < h.bounds.size(); ++i) {
    if (i > 0) out += ", ";
    out += obs::FormatDouble(h.bounds[i]);
  }
  out += "], \"counts\": [";
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(h.buckets[i]);
  }
  out += "], \"count\": " + std::to_string(h.count) +
         ", \"sum\": " + obs::FormatDouble(h.sum) + "}";
  return out;
}

void PrintObservabilityTable() {
  std::printf("=== E3: observability layer cost and exposition (n=32, 1000 queries) ===\n");
  const int n = 32;
  ConstraintSet premises;
  std::vector<DifferentialConstraint> goals;
  MakeBatchWorkload(n, 1000, &premises, &goals);

  EngineOptions opts;
  opts.num_threads = 4;
  ImplicationEngine engine(opts);
  EngineOptions traced_opts = opts;
  traced_opts.trace = true;
  ImplicationEngine traced_engine(traced_opts);

  // Warm the shared caches so the measured batches are the hot-path steady
  // state where instrumentation cost is proportionally largest.
  (void)engine.CheckBatch(n, premises, goals);
  (void)traced_engine.CheckBatch(n, premises, goals);

  // Interleaved min-of-trials (the hot batch is ~1ms, scheduler noise
  // dominates single runs): disabled / enabled / enabled+trace.
  const int kReps = 5;
  const int kTrials = 8;
  double disabled_ms = 1e100, enabled_ms = 1e100, trace_ms = 1e100;
  for (int t = 0; t < kTrials; ++t) {
    obs::SetMetricsEnabled(false);
    disabled_ms = std::min(
        disabled_ms,
        MeasureMs([&] { (void)engine.CheckBatch(n, premises, goals); }, kReps));
    obs::SetMetricsEnabled(true);
    enabled_ms = std::min(
        enabled_ms,
        MeasureMs([&] { (void)engine.CheckBatch(n, premises, goals); }, kReps));
    trace_ms = std::min(
        trace_ms,
        MeasureMs([&] { (void)traced_engine.CheckBatch(n, premises, goals); }, kReps));
  }
  obs::SetMetricsEnabled(true);
  const double enabled_pct =
      disabled_ms > 0 ? (enabled_ms / disabled_ms - 1.0) * 100.0 : 0.0;
  const double trace_pct =
      disabled_ms > 0 ? (trace_ms / disabled_ms - 1.0) * 100.0 : 0.0;
  std::printf("metrics overhead: disabled %.3fms, enabled %.3fms (%+.2f%%), "
              "enabled+trace %.3fms (%+.2f%%)\n",
              disabled_ms, enabled_ms, enabled_pct, trace_ms, trace_pct);

  // Populate the deadline-slack histogram: the adversarial PHP degrade run
  // (near-zero slack) plus the friendly batch under a generous deadline
  // (large slack), so the distribution has both tails.
  const int kPhpHoles = 6;
  prop::DnfFormula php = PigeonholeDnf(kPhpHoles);
  ConstraintSet php_premises = DnfTautologyReduction(php);
  std::vector<DifferentialConstraint> php_goals(100, TautologyGoal());
  EngineOptions adv;
  adv.num_threads = 4;
  adv.per_query_deadline = std::chrono::milliseconds(10);
  adv.batch_deadline = std::chrono::seconds(2);
  adv.exhaustion_policy = ExhaustionPolicy::kDegrade;
  ImplicationEngine adv_engine(adv);
  Result<BatchOutcome> adv_out = adv_engine.CheckBatch(php.num_vars, php_premises, php_goals);

  EngineOptions friendly = opts;
  friendly.per_query_deadline = std::chrono::seconds(10);
  ImplicationEngine friendly_engine(friendly);
  (void)friendly_engine.CheckBatch(n, premises, goals);

  // Pull the distributions out of the registry snapshot.
  obs::MetricsSnapshot snap = obs::Registry::Global().Snapshot();
  const obs::HistogramSample* slack = nullptr;
  std::vector<const obs::HistogramSample*> latency;
  for (const obs::HistogramSample& h : snap.histograms) {
    if (h.name == "diffc_deadline_slack_seconds") slack = &h;
    if (h.name == "diffc_engine_query_seconds") latency.push_back(&h);
  }
  if (slack != nullptr) {
    std::printf("deadline slack: %llu samples, mean %.4fs\n",
                static_cast<unsigned long long>(slack->count),
                slack->count > 0 ? slack->sum / static_cast<double>(slack->count) : 0.0);
  }

  // Machine-readable record, shape-checked against BENCH_E3.schema.json.
  std::ofstream json("BENCH_E3.json");
  json << "{\n";
  json << "  \"experiment\": \"E3\",\n";
  json << "  \"n\": " << n << ",\n";
  json << "  \"queries\": " << goals.size() << ",\n";
  json << "  \"threads\": " << opts.num_threads << ",\n";
  json << "  \"overhead\": {\"reps\": " << kReps << ", \"trials\": " << kTrials
       << ", \"disabled_ms\": " << disabled_ms << ", \"enabled_ms\": " << enabled_ms
       << ", \"enabled_trace_ms\": " << trace_ms
       << ", \"enabled_overhead_pct\": " << enabled_pct
       << ", \"trace_overhead_pct\": " << trace_pct << "},\n";
  json << "  \"deadline_slack\": "
       << (slack != nullptr ? HistogramJson(*slack) : std::string("null")) << ",\n";
  json << "  \"adversarial\": {\"queries\": " << php_goals.size()
       << ", \"per_query_deadline_ms\": 10, \"policy\": \"degrade\", \"degraded\": "
       << (adv_out.ok() ? adv_out->stats.degraded : 0) << "},\n";
  json << "  \"query_latency\": [";
  for (std::size_t i = 0; i < latency.size(); ++i) {
    if (i > 0) json << ",";
    std::string procedure;
    for (const auto& [k, v] : latency[i]->labels) {
      if (k == "procedure") procedure = v;
    }
    json << "\n    {\"procedure\": \"" << procedure
         << "\", \"histogram\": " << HistogramJson(*latency[i]) << "}";
  }
  json << (latency.empty() ? "],\n" : "\n  ],\n");
  json << "  \"events\": {\"total\": " << obs::GlobalEventLog().total()
       << ", \"dropped\": " << obs::GlobalEventLog().dropped() << "},\n";
  json << "  \"metrics\": " << obs::SnapshotJson() << "\n";
  json << "}\n";
  std::printf("wrote BENCH_E3.json\n\n");
}

void BM_Exhaustive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n);
  ConstraintSet premises = RandomSet(rng, n, 6);
  DifferentialConstraint goal = RandomConstraint(rng, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckImplicationExhaustive(n, premises, goal)->implied);
  }
}
BENCHMARK(BM_Exhaustive)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_Sat(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n);
  ConstraintSet premises = RandomSet(rng, n, 6);
  DifferentialConstraint goal = RandomConstraint(rng, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckImplicationSat(n, premises, goal)->implied);
  }
}
BENCHMARK(BM_Sat)->Arg(8)->Arg(16)->Arg(32)->Arg(48)->Arg(64);

void BM_SatVsConstraintCount(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  const int n = 32;
  Rng rng(count);
  ConstraintSet premises = RandomSet(rng, n, count);
  DifferentialConstraint goal = RandomConstraint(rng, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckImplicationSat(n, premises, goal)->implied);
  }
}
BENCHMARK(BM_SatVsConstraintCount)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_SequentialBatch(benchmark::State& state) {
  const int n = 32;
  ConstraintSet premises;
  std::vector<DifferentialConstraint> goals;
  MakeBatchWorkload(n, static_cast<int>(state.range(0)), &premises, &goals);
  for (auto _ : state) {
    for (const DifferentialConstraint& g : goals) {
      benchmark::DoNotOptimize(CheckImplication(n, premises, g)->implied);
    }
  }
  state.SetItemsProcessed(state.iterations() * goals.size());
}
BENCHMARK(BM_SequentialBatch)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_EngineBatch(benchmark::State& state) {
  const int n = 32;
  ConstraintSet premises;
  std::vector<DifferentialConstraint> goals;
  MakeBatchWorkload(n, 1000, &premises, &goals);
  EngineOptions opts;
  opts.num_threads = static_cast<int>(state.range(0));
  ImplicationEngine engine(opts);
  for (auto _ : state) {
    Result<BatchOutcome> out = engine.CheckBatch(n, premises, goals);
    benchmark::DoNotOptimize(out.ok() && out->stats.implied > 0);
  }
  state.SetItemsProcessed(state.iterations() * goals.size());
}
BENCHMARK(BM_EngineBatch)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace diffc

int main(int argc, char** argv) {
  // Fast path for CI schema validation: only the E3 experiment.
  if (std::getenv("DIFFC_BENCH_E3_ONLY") != nullptr) {
    diffc::PrintObservabilityTable();
    return 0;
  }
  diffc::PrintScalingTable();
  diffc::PrintBatchEngineTable();
  diffc::PrintObservabilityTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
