// Experiment E1 — implication-checker scaling (Theorem 3.5 vs
// Proposition 5.4): the exhaustive lattice-containment checker is
// exponential in the number of free attributes, while the SAT-based
// procedure scales with formula size on typical instances. The table shows
// the crossover; the benchmarks measure both deciders across universe size
// and constraint-set size.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>

#include "core/implication.h"
#include "util/random.h"

namespace diffc {
namespace {

DifferentialConstraint RandomConstraint(Rng& rng, int n, int members) {
  ItemSet lhs(rng.RandomMask(n, 2.0 / n));
  std::vector<ItemSet> family;
  for (int i = 0; i < members; ++i) {
    Mask m = rng.RandomMask(n, 2.0 / n);
    if (m == 0) m = Mask{1} << rng.UniformInt(0, n - 1);
    family.push_back(ItemSet(m));
  }
  return DifferentialConstraint(lhs, SetFamily(std::move(family)));
}

ConstraintSet RandomSet(Rng& rng, int n, int count) {
  ConstraintSet out;
  for (int i = 0; i < count; ++i) out.push_back(RandomConstraint(rng, n, 2));
  return out;
}

double MeasureMs(const std::function<void()>& fn, int reps) {
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count() / reps;
}

void PrintScalingTable() {
  std::printf("=== E1: implication deciders vs universe size (|C|=6, 20 queries) ===\n");
  std::printf("%6s %16s %16s %10s\n", "n", "exhaustive(ms)", "sat(ms)", "agree");
  for (int n : {8, 12, 16, 20, 24}) {
    Rng rng(n * 131);
    ConstraintSet premises = RandomSet(rng, n, 6);
    std::vector<DifferentialConstraint> goals;
    for (int i = 0; i < 20; ++i) goals.push_back(RandomConstraint(rng, n, 2));

    bool all_agree = true;
    double ex_ms = MeasureMs(
        [&] {
          for (const DifferentialConstraint& g : goals) {
            (void)CheckImplicationExhaustive(n, premises, g);
          }
        },
        1);
    double sat_ms = MeasureMs(
        [&] {
          for (const DifferentialConstraint& g : goals) {
            (void)CheckImplicationSat(n, premises, g);
          }
        },
        1);
    for (const DifferentialConstraint& g : goals) {
      Result<ImplicationOutcome> a = CheckImplicationExhaustive(n, premises, g);
      Result<ImplicationOutcome> b = CheckImplicationSat(n, premises, g);
      if (!a.ok() || !b.ok() || a->implied != b->implied) all_agree = false;
    }
    std::printf("%6d %16.3f %16.3f %10s\n", n, ex_ms, sat_ms, all_agree ? "yes" : "NO");
  }
  std::printf("\n=== E1b: SAT decider vs |C| (n=32) ===\n");
  std::printf("%6s %16s\n", "|C|", "sat(ms)");
  for (int count : {2, 8, 32, 128}) {
    Rng rng(count * 17 + 3);
    const int n = 32;
    ConstraintSet premises = RandomSet(rng, n, count);
    std::vector<DifferentialConstraint> goals;
    for (int i = 0; i < 20; ++i) goals.push_back(RandomConstraint(rng, n, 2));
    double sat_ms = MeasureMs(
        [&] {
          for (const DifferentialConstraint& g : goals) {
            (void)CheckImplicationSat(n, premises, g);
          }
        },
        1);
    std::printf("%6d %16.3f\n", count, sat_ms);
  }
  std::printf("\n");
}

void BM_Exhaustive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n);
  ConstraintSet premises = RandomSet(rng, n, 6);
  DifferentialConstraint goal = RandomConstraint(rng, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckImplicationExhaustive(n, premises, goal)->implied);
  }
}
BENCHMARK(BM_Exhaustive)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_Sat(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n);
  ConstraintSet premises = RandomSet(rng, n, 6);
  DifferentialConstraint goal = RandomConstraint(rng, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckImplicationSat(n, premises, goal)->implied);
  }
}
BENCHMARK(BM_Sat)->Arg(8)->Arg(16)->Arg(32)->Arg(48)->Arg(64);

void BM_SatVsConstraintCount(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  const int n = 32;
  Rng rng(count);
  ConstraintSet premises = RandomSet(rng, n, count);
  DifferentialConstraint goal = RandomConstraint(rng, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckImplicationSat(n, premises, goal)->implied);
  }
}
BENCHMARK(BM_SatVsConstraintCount)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace diffc

int main(int argc, char** argv) {
  diffc::PrintScalingTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
