// Experiment E7 — the equivalence of implication semantics
// (Propositions 6.3/6.4, Theorem 8.1): the same queries decided over
// F(S) (lattice containment), over support functions (basket-list
// counterexamples), and propositionally (minset entailment), with relative
// costs. The equivalence is what lets the cheap SAT procedure answer the
// semantic question for every function class at once.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>

#include "core/closure.h"
#include "core/implication.h"
#include "fis/basket.h"
#include "fis/disjunctive.h"
#include "prop/implication_constraint.h"
#include "prop/minterm.h"
#include "util/random.h"

namespace diffc {
namespace {

DifferentialConstraint RandomConstraint(Rng& rng, int n, int members) {
  ItemSet lhs(rng.RandomMask(n, 0.25));
  std::vector<ItemSet> family;
  for (int i = 0; i < members; ++i) {
    Mask m = rng.RandomMask(n, 0.3);
    if (m == 0) m = Mask{1} << rng.UniformInt(0, n - 1);
    family.push_back(ItemSet(m));
  }
  return DifferentialConstraint(lhs, SetFamily(std::move(family)));
}

// Support-function semantics by exhaustive one-basket counterexample
// search (the witness class from Proposition 6.4's proof).
bool SupportImplication(int n, const ConstraintSet& c, const DifferentialConstraint& g) {
  for (Mask u = 0; u < (Mask{1} << n); ++u) {
    BasketList b = *BasketList::Make(n, {u});
    bool premises_ok = true;
    for (const DifferentialConstraint& p : c) {
      if (!SatisfiesDisjunctive(b, p)) {
        premises_ok = false;
        break;
      }
    }
    if (premises_ok && !SatisfiesDisjunctive(b, g)) return false;
  }
  return true;
}

bool PropositionalImplication(int n, const ConstraintSet& c,
                              const DifferentialConstraint& g) {
  std::vector<prop::FormulaPtr> premises;
  for (const DifferentialConstraint& p : c) {
    premises.push_back(prop::ImplicationConstraintFormula(p.lhs(), p.rhs()));
  }
  return *prop::Entails(premises, *prop::ImplicationConstraintFormula(g.lhs(), g.rhs()),
                        n);
}

void PrintSemanticsTable() {
  const int n = 10;
  const int kQueries = 30;
  std::printf("=== E7: four faces of the implication problem (n=%d, %d queries) ===\n",
              n, kQueries);
  Rng rng(81);
  ConstraintSet premises;
  for (int i = 0; i < 4; ++i) premises.push_back(RandomConstraint(rng, n, 2));
  std::vector<DifferentialConstraint> goals;
  for (int i = 0; i < kQueries; ++i) goals.push_back(RandomConstraint(rng, n, 2));

  struct Face {
    const char* name;
    std::function<bool(const DifferentialConstraint&)> decide;
  };
  std::vector<Face> faces{
      {"lattice (exhaustive)",
       [&](const DifferentialConstraint& g) {
         return CheckImplicationExhaustive(n, premises, g)->implied;
       }},
      {"SAT / coNP",
       [&](const DifferentialConstraint& g) {
         return CheckImplicationSat(n, premises, g)->implied;
       }},
      {"support functions",
       [&](const DifferentialConstraint& g) { return SupportImplication(n, premises, g); }},
      {"propositional minsets",
       [&](const DifferentialConstraint& g) {
         return PropositionalImplication(n, premises, g);
       }},
  };

  std::vector<std::vector<bool>> answers(faces.size());
  std::printf("%-24s %12s %8s\n", "face", "total ms", "implied");
  for (std::size_t f = 0; f < faces.size(); ++f) {
    auto t0 = std::chrono::steady_clock::now();
    int implied = 0;
    for (const DifferentialConstraint& g : goals) {
      bool r = faces[f].decide(g);
      answers[f].push_back(r);
      if (r) ++implied;
    }
    auto t1 = std::chrono::steady_clock::now();
    std::printf("%-24s %12.2f %8d\n", faces[f].name,
                std::chrono::duration<double, std::milli>(t1 - t0).count(), implied);
  }
  bool all_agree = true;
  for (std::size_t f = 1; f < faces.size(); ++f) {
    if (answers[f] != answers[0]) all_agree = false;
  }
  std::printf("all faces agree on all %d queries: %s\n\n", kQueries,
              all_agree ? "yes" : "NO");
}

void BM_FaceSat(benchmark::State& state) {
  const int n = 10;
  Rng rng(82);
  ConstraintSet premises;
  for (int i = 0; i < 4; ++i) premises.push_back(RandomConstraint(rng, n, 2));
  DifferentialConstraint goal = RandomConstraint(rng, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckImplicationSat(n, premises, goal)->implied);
  }
}
BENCHMARK(BM_FaceSat);

void BM_FaceSupport(benchmark::State& state) {
  const int n = 10;
  Rng rng(82);
  ConstraintSet premises;
  for (int i = 0; i < 4; ++i) premises.push_back(RandomConstraint(rng, n, 2));
  DifferentialConstraint goal = RandomConstraint(rng, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SupportImplication(n, premises, goal));
  }
}
BENCHMARK(BM_FaceSupport);

void BM_FacePropositional(benchmark::State& state) {
  const int n = 10;
  Rng rng(82);
  ConstraintSet premises;
  for (int i = 0; i < 4; ++i) premises.push_back(RandomConstraint(rng, n, 2));
  DifferentialConstraint goal = RandomConstraint(rng, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PropositionalImplication(n, premises, goal));
  }
}
BENCHMARK(BM_FacePropositional);

}  // namespace
}  // namespace diffc

int main(int argc, char** argv) {
  diffc::PrintSemanticsTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
