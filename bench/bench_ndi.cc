// Experiment E6b — the Calders–Goethals non-derivable-itemset table: the
// NDI deduction rules are exactly the nonnegativity of the paper's
// differentials on support functions (Section 6), so the NDI
// representation is the "use every differential" end of the spectrum that
// starts with Apriori (no rules) and Bykowski–Rigotti (arity-2 rules).
// The table compares all three across thresholds.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "fis/apriori.h"
#include "fis/closed.h"
#include "fis/concise.h"
#include "fis/generator.h"
#include "fis/ndi.h"

namespace diffc {
namespace {

BasketList MakeData(std::uint64_t seed) {
  BasketGenConfig config;
  config.num_items = 14;
  config.num_baskets = 3000;
  config.num_patterns = 4;
  config.pattern_size = 4;
  config.pattern_prob = 0.35;
  config.noise_density = 0.12;
  config.seed = seed;
  std::vector<PlantedRule> rules{{0, ItemSet{1, 2}}, {3, ItemSet{4}}};
  return *GenerateBasketsWithRules(config, rules);
}

void PrintNdiTable() {
  BasketList b = MakeData(2005);
  std::printf("=== E6b: concise representations compared ===\n");
  std::printf("%8s | %10s | %8s %8s | %10s %8s | %8s\n", "kappa", "frequent", "closed",
              "maximal", "FDFree+Bd-", "rules", "NDI");
  for (std::int64_t kappa : {30, 90, 180, 450}) {
    AprioriResult apriori = *Apriori(b, kappa);
    std::vector<CountedItemset> closed = *ClosedFrequentItemsets(b, kappa);
    std::vector<CountedItemset> maximal = *MaximalFrequentItemsets(b, kappa);
    ConciseRepresentation fdfree =
        *ConciseRepresentation::Build(b, {.min_support = kappa, .rule_arity = 2});
    NdiRepresentation ndi = *NdiRepresentation::Build(b, kappa);
    std::printf("%8lld | %10zu | %8zu %8zu | %10zu %8zu | %8zu\n",
                static_cast<long long>(kappa), apriori.frequent.size(), closed.size(),
                maximal.size(), fdfree.size(), fdfree.rules().size(), ndi.size());
  }
  std::printf("(all representations reconstruct every frequent support except\n"
              " maximal, which determines status only; NDI <= FDFree <= frequent\n"
              " by theory on rule-rich data)\n\n");
}

void BM_NdiBuild(benchmark::State& state) {
  BasketList b = MakeData(7);
  const std::int64_t kappa = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(NdiRepresentation::Build(b, kappa)->size());
  }
}
BENCHMARK(BM_NdiBuild)->Arg(30)->Arg(90)->Arg(300);

void BM_NdiBounds(benchmark::State& state) {
  BasketList b = MakeData(7);
  const int size = static_cast<int>(state.range(0));
  Mask x = FullMask(size);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        NdiBounds(x, b.size(), [](Mask) -> std::int64_t { return 100; })->lower);
  }
}
BENCHMARK(BM_NdiBounds)->Arg(4)->Arg(8)->Arg(12);

void BM_NdiDerive(benchmark::State& state) {
  BasketList b = MakeData(7);
  NdiRepresentation rep = *NdiRepresentation::Build(b, 30);
  Rng rng(1);
  std::vector<ItemSet> queries;
  for (int i = 0; i < 64; ++i) queries.push_back(ItemSet(rng.RandomMask(14, 0.25)));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rep.Derive(queries[i++ % queries.size()]).frequent);
  }
}
BENCHMARK(BM_NdiDerive);

}  // namespace
}  // namespace diffc

int main(int argc, char** argv) {
  diffc::PrintNdiTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
