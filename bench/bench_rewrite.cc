// Experiment E10 — the rewrite canonicalizer vs the legacy inline path:
// one revalidation-style workload (a premise set with the redundancy shapes
// real mining loops accumulate: augmented copies of existing constraints,
// non-minimal witness families, members overlapping their left-hand side,
// and split same-lhs constraints) compiled two ways:
//
//   raw        — `PrepareOptions::use_rewriter = false`: the PR 5 inline
//                canonicalization (drop trivial, minimize families, dedupe).
//   simplified — the rule-driven simplifier at level 2 (DESIGN.md §14).
//
// The headline number is the artifact shrink attributable to the rewriter
// beyond the inline path: member_reduction = 1 − members(simplified) /
// members(raw). The acceptance bar is >= 10%, encoded in
// bench/BENCH_E10.schema.json and checked in CI; repeated-query speedup on
// the smaller artifact is reported alongside, and verdict agreement across
// the two compilations is pinned. Results land in BENCH_E10.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/implication_engine.h"
#include "rewrite/rewrite_rule.h"
#include "rewrite/simplifier.h"
#include "util/random.h"

namespace diffc {
namespace {

DifferentialConstraint RandomConstraint(Rng& rng, int n, int members) {
  ItemSet lhs(rng.RandomMask(n, 2.0 / n));
  std::vector<ItemSet> family;
  for (int i = 0; i < members; ++i) {
    Mask m = rng.RandomMask(n, 3.0 / n);
    if (m == 0) m = Mask{1} << rng.UniformInt(0, n - 1);
    family.push_back(ItemSet(m));
  }
  return DifferentialConstraint(lhs, SetFamily(std::move(family)));
}

// The E10 workload: a base set plus the redundancy only the rewriter can
// remove — the inline path keeps augmented (non-identical) copies and
// split same-lhs constraints, so the differential is exactly the new
// rules' contribution.
void MakeWorkload(int n, ConstraintSet* premises,
                  std::vector<DifferentialConstraint>* goals) {
  Rng rng(20260809);
  premises->clear();
  const int kBase = 48;
  for (int i = 0; i < kBase; ++i) premises->push_back(RandomConstraint(rng, n, 2));
  // Augmented copies (wider lhs, same family): absorbed by their base.
  for (int i = 0; i < 16; ++i) {
    const DifferentialConstraint& p = (*premises)[static_cast<std::size_t>(i * 3 % kBase)];
    premises->push_back(DifferentialConstraint(
        p.lhs().Union(ItemSet(rng.RandomMask(n, 2.0 / n))), p.rhs()));
  }
  // Split same-lhs singleton constraints: merged into one via the union rule.
  for (int i = 0; i < 12; ++i) {
    ItemSet lhs(rng.RandomMask(n, 2.0 / n));
    Mask a = rng.RandomMask(n, 2.0 / n) & ~lhs.bits();
    Mask b = rng.RandomMask(n, 2.0 / n) & ~lhs.bits();
    if (a == 0) a = Mask{1} << rng.UniformInt(0, n - 1);
    if (b == 0) b = Mask{1} << rng.UniformInt(0, n - 1);
    premises->push_back(DifferentialConstraint(lhs, SetFamily({ItemSet(a)})));
    premises->push_back(DifferentialConstraint(lhs, SetFamily({ItemSet(b)})));
  }
  // Members overlapping their lhs: narrowed (items shrink, members stay).
  for (int i = 0; i < 8; ++i) {
    ItemSet lhs(rng.RandomMask(n, 3.0 / n));
    Mask outside = rng.RandomMask(n, 2.0 / n) & ~lhs.bits();
    if (outside == 0) outside = Mask{1} << rng.UniformInt(0, n - 1);
    premises->push_back(DifferentialConstraint(
        lhs, SetFamily({ItemSet(outside | (lhs.bits() & (lhs.bits() >> 1)))})));
  }
  // Non-minimal families and trivial constraints: both paths remove these,
  // so they add canonicalization work without skewing the differential.
  for (int i = 0; i < 8; ++i) {
    const DifferentialConstraint& p = (*premises)[static_cast<std::size_t>(i * 5 % kBase)];
    premises->push_back(DifferentialConstraint(
        p.lhs(), p.rhs().WithMember(p.rhs().member(0).Union(ItemSet(rng.RandomMask(n, 0.3))))));
  }
  premises->push_back(DifferentialConstraint(ItemSet{0, 1}, SetFamily({ItemSet{1}})));

  goals->clear();
  const int kQueries = 400;
  goals->reserve(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    if (i % 4 != 3) {  // Mostly revalidation: augmented premises (implied).
      const DifferentialConstraint& p = (*premises)[static_cast<std::size_t>(i % kBase)];
      goals->push_back(DifferentialConstraint(
          p.lhs().Union(ItemSet(rng.RandomMask(n, 2.0 / n))), p.rhs()));
    } else {
      goals->push_back(RandomConstraint(rng, n, 2));
    }
  }
}

double MeasureMs(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

void RunRewriteExperiment() {
  std::printf("=== E10: rewrite canonicalizer vs inline path "
              "(n=16, planted redundancy, 400 queries) ===\n");
  const int n = 16;
  const int kTrials = 5;
  ConstraintSet premises;
  std::vector<DifferentialConstraint> goals;
  MakeWorkload(n, &premises, &goals);

  PrepareOptions raw_opts;
  raw_opts.use_rewriter = false;
  Result<std::shared_ptr<const PreparedPremises>> raw =
      PreparedPremises::Build(n, premises, raw_opts);
  Result<std::shared_ptr<const PreparedPremises>> simplified =
      PreparedPremises::Build(n, premises);  // Rewriter at level 2.
  if (!raw.ok() || !simplified.ok()) {
    std::fprintf(stderr, "Build failed\n");
    return;
  }

  const rewrite::RewriteCost raw_cost = rewrite::RewriteCost::Of((*raw)->constraints());
  const rewrite::RewriteCost simplified_cost =
      rewrite::RewriteCost::Of((*simplified)->constraints());
  const double member_reduction =
      raw_cost.members == 0
          ? 0.0
          : 1.0 - static_cast<double>(simplified_cost.members) /
                      static_cast<double>(raw_cost.members);
  const double constraint_reduction =
      raw_cost.constraints == 0
          ? 0.0
          : 1.0 - static_cast<double>(simplified_cost.constraints) /
                      static_cast<double>(raw_cost.constraints);
  const double item_reduction =
      raw_cost.member_items == 0
          ? 0.0
          : 1.0 - static_cast<double>(simplified_cost.member_items) /
                      static_cast<double>(raw_cost.member_items);

  EngineOptions opts;
  opts.num_threads = 1;
  ImplicationEngine engine(opts);

  // Warm the witness cache so both rows measure steady-state query cost on
  // their artifact, not first-touch witness enumeration.
  for (const DifferentialConstraint& g : goals) {
    (void)engine.CheckOne(*raw, g);
    (void)engine.CheckOne(*simplified, g);
  }

  bool verdicts_agree = true;
  auto run_row = [&](const std::shared_ptr<const PreparedPremises>& artifact,
                     std::vector<bool>* verdicts) {
    double best = 1e100;
    for (int t = 0; t < kTrials; ++t) {
      std::vector<bool> got;
      got.reserve(goals.size());
      best = std::min(best, MeasureMs([&] {
        for (const DifferentialConstraint& g : goals) {
          EngineQueryResult r = engine.CheckOne(artifact, g);
          got.push_back(r.status.ok() && r.outcome.implied);
        }
      }));
      *verdicts = std::move(got);
    }
    return best;
  };

  std::vector<bool> raw_verdicts;
  std::vector<bool> simplified_verdicts;
  const double raw_ms = run_row(*raw, &raw_verdicts);
  const double simplified_ms = run_row(*simplified, &simplified_verdicts);
  verdicts_agree = raw_verdicts == simplified_verdicts;
  const double query_speedup = simplified_ms > 0 ? raw_ms / simplified_ms : 0.0;

  const PrepareStats& ss = (*simplified)->stats();
  std::printf("%22s %12s %10s %10s\n", "", "constraints", "members", "items");
  std::printf("%22s %12zu %10zu %10zu\n", "input",
              rewrite::RewriteCost::Of(premises).constraints,
              rewrite::RewriteCost::Of(premises).members,
              rewrite::RewriteCost::Of(premises).member_items);
  std::printf("%22s %12zu %10zu %10zu\n", "inline (raw)", raw_cost.constraints,
              raw_cost.members, raw_cost.member_items);
  std::printf("%22s %12zu %10zu %10zu\n", "rewriter (level 2)",
              simplified_cost.constraints, simplified_cost.members,
              simplified_cost.member_items);
  std::printf("reduction vs inline: %.1f%% constraints, %.1f%% members, %.1f%% items\n",
              100 * constraint_reduction, 100 * member_reduction, 100 * item_reduction);
  std::printf("rewriter: %zu passes, %zu edits", ss.rewrite_passes, ss.rewrite_applied);
  for (const auto& [rule, edits] : ss.rewrite_rule_applied) {
    std::printf("  %s=%zu", rule.c_str(), edits);
  }
  std::printf("\nqueries: raw %.3fms, simplified %.3fms (%.2fx), verdicts %s\n\n",
              raw_ms, simplified_ms, query_speedup, verdicts_agree ? "agree" : "DISAGREE");

  // Machine-readable record, shape-checked against BENCH_E10.schema.json
  // (which pins member_reduction >= 0.10 and verdicts_agree).
  std::ofstream json("BENCH_E10.json");
  json << "{\n";
  json << "  \"experiment\": \"E10\",\n";
  json << "  \"n\": " << n << ",\n";
  json << "  \"input_constraints\": " << premises.size() << ",\n";
  json << "  \"queries\": " << goals.size() << ",\n";
  json << "  \"trials\": " << kTrials << ",\n";
  json << "  \"raw\": {\"constraints\": " << raw_cost.constraints
       << ", \"members\": " << raw_cost.members
       << ", \"items\": " << raw_cost.member_items << "},\n";
  json << "  \"simplified\": {\"constraints\": " << simplified_cost.constraints
       << ", \"members\": " << simplified_cost.members
       << ", \"items\": " << simplified_cost.member_items << "},\n";
  json << "  \"member_reduction\": " << member_reduction << ",\n";
  json << "  \"constraint_reduction\": " << constraint_reduction << ",\n";
  json << "  \"item_reduction\": " << item_reduction << ",\n";
  json << "  \"rewrite_passes\": " << ss.rewrite_passes << ",\n";
  json << "  \"rewrite_applied\": " << ss.rewrite_applied << ",\n";
  json << "  \"raw_ms\": " << raw_ms << ",\n";
  json << "  \"simplified_ms\": " << simplified_ms << ",\n";
  json << "  \"query_speedup\": " << query_speedup << ",\n";
  json << "  \"verdicts_agree\": " << (verdicts_agree ? "true" : "false") << "\n";
  json << "}\n";
  std::printf("wrote BENCH_E10.json\n\n");
}

void BM_SimplifyWorkload(benchmark::State& state) {
  const int n = 16;
  ConstraintSet premises;
  std::vector<DifferentialConstraint> goals;
  MakeWorkload(n, &premises, &goals);
  rewrite::SimplifyOptions opts;
  opts.level = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rewrite::Simplify(n, premises, opts));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(premises.size()));
}
BENCHMARK(BM_SimplifyWorkload)->Arg(1)->Arg(2);

void BM_PrepareWithRewriter(benchmark::State& state) {
  const int n = 16;
  ConstraintSet premises;
  std::vector<DifferentialConstraint> goals;
  MakeWorkload(n, &premises, &goals);
  PrepareOptions opts;
  opts.use_rewriter = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PreparedPremises::Build(n, premises, opts));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrepareWithRewriter)->Arg(0)->Arg(1);

}  // namespace
}  // namespace diffc

int main(int argc, char** argv) {
  // Fast path for CI schema validation: only the E10 table.
  if (std::getenv("DIFFC_BENCH_E10_ONLY") != nullptr) {
    diffc::RunRewriteExperiment();
    return 0;
  }
  diffc::RunRewriteExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
