// Experiment E9 — the paper's open problem (end of Section 7): do the
// Simpson-function results carry over to Shannon functions? This probe
// measures, over random probabilistic relations, how often density-based
// satisfaction of the Shannon complement function g(X) = H(S) - H(X)
// agrees with the boolean-dependency semantics, broken down by the
// right-hand family size: order 1 (FDs — provably agrees) and order 2
// (conditional mutual information — provably one-sided) vs order >= 3
// (interaction information can go negative; agreement is empirical).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>

#include "core/function_ops.h"
#include "relational/boolean_dependency.h"
#include "relational/entropy.h"
#include "relational/simpson.h"
#include "util/random.h"

namespace diffc {
namespace {

Relation RandomRelation(Rng& rng, int attrs, int tuples, int domain) {
  std::vector<std::vector<int>> rows;
  std::set<std::vector<int>> seen;
  while (static_cast<int>(rows.size()) < tuples) {
    std::vector<int> row(attrs);
    for (int a = 0; a < attrs; ++a) row[a] = static_cast<int>(rng.UniformInt(0, domain - 1));
    if (seen.insert(row).second) rows.push_back(row);
  }
  return *Relation::Make(attrs, rows);
}

DifferentialConstraint RandomConstraint(Rng& rng, int n, int members) {
  ItemSet lhs(rng.RandomMask(n, 0.3));
  std::vector<ItemSet> family;
  for (int i = 0; i < members; ++i) {
    Mask m = rng.RandomMask(n, 0.4);
    if (m == 0) m = Mask{1} << rng.UniformInt(0, n - 1);
    family.push_back(ItemSet(m));
  }
  return DifferentialConstraint(lhs, SetFamily(std::move(family)));
}

void PrintOpenProblemTable() {
  const int n = 5;
  std::printf("=== E9: open-problem probe — Shannon vs boolean dependencies ===\n");
  std::printf("%10s %10s %10s %12s %12s\n", "|Y|", "queries", "agree", "shannon-only",
              "boolean-only");
  Rng rng(1905);
  for (int members : {1, 2, 3}) {
    int agree = 0, shannon_only = 0, boolean_only = 0, total = 0;
    for (int r_iter = 0; r_iter < 40; ++r_iter) {
      Relation r = RandomRelation(rng, n, static_cast<int>(rng.UniformInt(2, 10)), 2);
      Distribution p = *Distribution::Uniform(r.size());
      SetFunction<double> density = Density(*ShannonComplementFunction(r, p));
      for (int c_iter = 0; c_iter < 20; ++c_iter) {
        DifferentialConstraint c = RandomConstraint(rng, n, members);
        bool shannon = SatisfiesWithDensity(density, c, 1e-9);
        bool boolean = SatisfiesBooleanDependency(r, c);
        ++total;
        if (shannon == boolean) {
          ++agree;
        } else if (shannon) {
          ++shannon_only;
        } else {
          ++boolean_only;
        }
      }
    }
    std::printf("%10d %10d %10d %12d %12d\n", members, total, agree, shannon_only,
                boolean_only);
  }
  std::printf("(Simpson functions agree on 100%% of queries by Proposition 7.3;\n"
              " any 'shannon-only'/'boolean-only' rows quantify the open gap)\n\n");

  // Sanity row: the Simpson face on the same instance stream.
  Rng rng2(1906);
  int agree = 0, total = 0;
  for (int r_iter = 0; r_iter < 20; ++r_iter) {
    Relation r = RandomRelation(rng2, n, static_cast<int>(rng2.UniformInt(2, 8)), 2);
    Distribution p = *Distribution::Uniform(r.size());
    SetFunction<Rational> density = Density(*SimpsonFunction(r, p));
    for (int c_iter = 0; c_iter < 20; ++c_iter) {
      DifferentialConstraint c = RandomConstraint(rng2, n, 3);
      ++total;
      if (SatisfiesWithDensity(density, c) == SatisfiesBooleanDependency(r, c)) ++agree;
    }
  }
  std::printf("control (Simpson, |Y|=3): %d/%d agree\n\n", agree, total);
}

void BM_ShannonFunction(benchmark::State& state) {
  Rng rng(3);
  Relation r = RandomRelation(rng, static_cast<int>(state.range(0)), 40, 3);
  Distribution p = *Distribution::Uniform(r.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ShannonFunction(r, p)->at(Mask{0}));
  }
}
BENCHMARK(BM_ShannonFunction)->Arg(6)->Arg(8)->Arg(10);

void BM_InformationDependency(benchmark::State& state) {
  Rng rng(4);
  Relation r = RandomRelation(rng, 8, 60, 3);
  Distribution p = *Distribution::Uniform(r.size());
  SetFunction<double> h = *ShannonFunction(r, p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SatisfiesInformationDependency(h, ItemSet{0, 1}, ItemSet{2}));
  }
}
BENCHMARK(BM_InformationDependency);

}  // namespace
}  // namespace diffc

int main(int argc, char** argv) {
  diffc::PrintOpenProblemTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
