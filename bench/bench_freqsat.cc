// Experiment E10 — frequency constraints meet differential constraints
// (the paper's closing future-work paragraph, connecting to Calders–
// Paredaens): entailed support intervals computed by exact rational LP
// over the density polytope. The table shows (a) how differential
// constraints tighten entailed intervals, and (b) LP tightness vs the
// NDI inclusion–exclusion bounds when all proper-subset supports are
// pinned.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/function_ops.h"
#include "fis/frequency.h"
#include "fis/generator.h"
#include "fis/ndi.h"
#include "fis/support.h"

namespace diffc {
namespace {

BasketList MakeData(std::uint64_t seed, int items) {
  BasketGenConfig config;
  config.num_items = items;
  config.num_baskets = 50;
  config.num_patterns = 2;
  config.pattern_size = 3;
  config.seed = seed;
  return *GenerateBaskets(config);
}

void PrintFreqsatTable() {
  std::printf("=== E10: entailed support intervals (rational LP over densities) ===\n");
  std::printf("-- full knowledge of proper subsets (LP must be within NDI) --\n");
  std::printf("%6s %14s %14s %10s\n", "seed", "NDI interval", "LP interval", "truth");
  for (int seed : {1, 2, 3, 4, 5}) {
    BasketList b = MakeData(seed, 5);
    SetFunction<std::int64_t> support = *SupportFunction(b);
    const Mask target = 0b1111;
    std::vector<FrequencyConstraint> freq;
    ForEachSubset(target, [&](Mask w) {
      if (w != target) freq.push_back({ItemSet(w), support.at(w), support.at(w)});
    });
    SupportBounds ndi =
        *NdiBounds(target, b.size(), [&](Mask m) { return support.at(m); });
    SupportInterval lp = *ImpliedSupportInterval(5, freq, {}, ItemSet(target));
    char ndi_text[32], lp_text[32];
    std::snprintf(ndi_text, sizeof(ndi_text), "[%lld,%lld]",
                  static_cast<long long>(ndi.lower), static_cast<long long>(ndi.upper));
    std::snprintf(lp_text, sizeof(lp_text), "[%s,%s]", lp.lo.ToString().c_str(),
                  lp.hi ? lp.hi->ToString().c_str() : "inf");
    std::printf("%6d %14s %14s %10lld\n", seed, ndi_text, lp_text,
                static_cast<long long>(support.at(target)));
  }

  std::printf("\n-- partial knowledge (only |W| <= 2 counted): LP still bounds, and\n"
              "   a satisfied disjunctive rule tightens the interval --\n");
  std::printf("%6s %14s %14s %10s\n", "seed", "LP interval", "LP + rule", "truth");
  for (int seed : {1, 2, 3, 4, 5}) {
    BasketList b = MakeData(seed, 5);
    SetFunction<std::int64_t> support = *SupportFunction(b);
    const Mask target = 0b0111;
    std::vector<FrequencyConstraint> freq;
    ForEachSubset(target, [&](Mask w) {
      if (Popcount(w) <= 2) freq.push_back({ItemSet(w), support.at(w), support.at(w)});
    });
    SupportInterval lp = *ImpliedSupportInterval(5, freq, {}, ItemSet(target));
    // Add any satisfied two-alternative rule inside the target.
    ConstraintSet diff;
    SetFunction<std::int64_t> density = Density(support);
    for (int a = 0; a < 3 && diff.empty(); ++a) {
      std::vector<ItemSet> alts;
      for (int y = 0; y < 3; ++y) {
        if (y != a) alts.push_back(ItemSet::Singleton(y));
      }
      DifferentialConstraint candidate(ItemSet::Singleton(a), SetFamily(alts));
      if (SatisfiesWithDensity(density, candidate)) diff.push_back(candidate);
    }
    SupportInterval lp_rule = *ImpliedSupportInterval(5, freq, diff, ItemSet(target));
    char lp_text[32], lpr_text[32];
    std::snprintf(lp_text, sizeof(lp_text), "[%s,%s]", lp.lo.ToString().c_str(),
                  lp.hi ? lp.hi->ToString().c_str() : "inf");
    std::snprintf(lpr_text, sizeof(lpr_text), "[%s,%s]", lp_rule.lo.ToString().c_str(),
                  lp_rule.hi ? lp_rule.hi->ToString().c_str() : "inf");
    std::printf("%6d %14s %14s %10lld\n", seed, lp_text, lpr_text,
                static_cast<long long>(support.at(target)));
  }
  std::printf("(LP interval ⊆ NDI interval under full knowledge; under partial\n"
              " knowledge the NDI bounds are inapplicable while the LP still\n"
              " answers, and differential constraints tighten it — the integration\n"
              " the paper's conclusion asks for)\n\n");
}

void BM_ConsistencyCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  BasketList b = MakeData(9, n);
  SetFunction<std::int64_t> support = *SupportFunction(b);
  std::vector<FrequencyConstraint> freq;
  for (int i = 0; i < n; ++i) {
    Mask m = Mask{1} << i;
    freq.push_back({ItemSet(m), support.at(m), support.at(m)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckFrequencyConsistency(n, freq)->consistent);
  }
}
BENCHMARK(BM_ConsistencyCheck)->Arg(4)->Arg(6)->Arg(8);

void BM_ImpliedInterval(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  BasketList b = MakeData(9, n);
  SetFunction<std::int64_t> support = *SupportFunction(b);
  const Mask target = FullMask(n - 1);
  std::vector<FrequencyConstraint> freq;
  ForEachSubset(target, [&](Mask w) {
    if (w != target) freq.push_back({ItemSet(w), support.at(w), support.at(w)});
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(ImpliedSupportInterval(n, freq, {}, ItemSet(target))->lo);
  }
}
BENCHMARK(BM_ImpliedInterval)->Arg(4)->Arg(5)->Arg(6);

}  // namespace
}  // namespace diffc

int main(int argc, char** argv) {
  diffc::PrintFreqsatTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
