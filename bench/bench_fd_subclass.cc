// Experiment E3 — the polynomial subclass (paper Section 8): for
// constraints with single-member right-hand sides, implication reduces to
// functional-dependency closure, decidable in P. The table compares the
// closure-based decider against the general SAT procedure as the
// constraint set grows, confirming agreement and the asymptotic gap.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "core/implication.h"
#include "util/random.h"

namespace diffc {
namespace {

ConstraintSet RandomFdSet(Rng& rng, int n, int count) {
  ConstraintSet out;
  for (int i = 0; i < count; ++i) {
    Mask lhs = rng.RandomMask(n, 2.0 / n);
    Mask rhs = Mask{1} << rng.UniformInt(0, n - 1);
    out.push_back(DifferentialConstraint(ItemSet(lhs), SetFamily({ItemSet(rhs)})));
  }
  return out;
}

void PrintSubclassTable() {
  std::printf("=== E3: FD subclass (P) vs general coNP decider ===\n");
  std::printf("%6s %6s %14s %14s %10s\n", "n", "|C|", "closure(us)", "sat(us)", "agree");
  for (int n : {16, 32, 64}) {
    for (int count : {8, 64, 512}) {
      Rng rng(n * 1000 + count);
      ConstraintSet premises = RandomFdSet(rng, n, count);
      std::vector<DifferentialConstraint> goals;
      for (int i = 0; i < 50; ++i) {
        Mask lhs = rng.RandomMask(n, 2.0 / n);
        Mask rhs = Mask{1} << rng.UniformInt(0, n - 1);
        goals.push_back(DifferentialConstraint(ItemSet(lhs), SetFamily({ItemSet(rhs)})));
      }
      bool agree = true;
      auto t0 = std::chrono::steady_clock::now();
      for (const DifferentialConstraint& g : goals) (void)CheckImplicationFd(n, premises, g);
      auto t1 = std::chrono::steady_clock::now();
      for (const DifferentialConstraint& g : goals) (void)CheckImplicationSat(n, premises, g);
      auto t2 = std::chrono::steady_clock::now();
      for (const DifferentialConstraint& g : goals) {
        if (CheckImplicationFd(n, premises, g)->implied !=
            CheckImplicationSat(n, premises, g)->implied) {
          agree = false;
        }
      }
      double fd_us = std::chrono::duration<double, std::micro>(t1 - t0).count() / 50;
      double sat_us = std::chrono::duration<double, std::micro>(t2 - t1).count() / 50;
      std::printf("%6d %6d %14.2f %14.2f %10s\n", n, count, fd_us, sat_us,
                  agree ? "yes" : "NO");
    }
  }
  std::printf("\n");
}

void BM_FdClosureDecide(benchmark::State& state) {
  const int n = 64;
  const int count = static_cast<int>(state.range(0));
  Rng rng(count);
  ConstraintSet premises = RandomFdSet(rng, n, count);
  DifferentialConstraint goal = RandomFdSet(rng, n, 1)[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckImplicationFd(n, premises, goal)->implied);
  }
}
BENCHMARK(BM_FdClosureDecide)->Arg(8)->Arg(64)->Arg(512)->Arg(2048);

void BM_SatOnFdInstances(benchmark::State& state) {
  const int n = 64;
  const int count = static_cast<int>(state.range(0));
  Rng rng(count);
  ConstraintSet premises = RandomFdSet(rng, n, count);
  DifferentialConstraint goal = RandomFdSet(rng, n, 1)[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckImplicationSat(n, premises, goal)->implied);
  }
}
BENCHMARK(BM_SatOnFdInstances)->Arg(8)->Arg(64)->Arg(512);

}  // namespace
}  // namespace diffc

int main(int argc, char** argv) {
  diffc::PrintSubclassTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
