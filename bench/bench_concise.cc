// Experiment E6 — concise representations (Section 6.1.1), the table of
// the Bykowski–Rigotti line of work: as the support threshold varies, the
// number of frequent itemsets vs the size of FDFree ∪ Bd⁻, the number of
// support counts performed, and the effect of planted disjunctive rules
// and of the rule arity (Kryszkiewicz–Gajek generalization).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "fis/apriori.h"
#include "fis/concise.h"
#include "fis/generator.h"

namespace diffc {
namespace {

BasketList MakeData(bool with_rules, std::uint64_t seed) {
  BasketGenConfig config;
  config.num_items = 14;
  config.num_baskets = 3000;
  config.num_patterns = 4;
  config.pattern_size = 4;
  config.pattern_prob = 0.35;
  config.noise_density = 0.12;
  config.seed = seed;
  if (!with_rules) return *GenerateBaskets(config);
  std::vector<PlantedRule> rules{
      {0, ItemSet{1, 2}}, {3, ItemSet{4}}, {5, ItemSet{6, 7}}};
  return *GenerateBasketsWithRules(config, rules);
}

void PrintConciseTable() {
  std::printf("=== E6: |frequent| vs |FDFree ∪ Bd-| across support thresholds ===\n");
  for (bool with_rules : {false, true}) {
    BasketList b = MakeData(with_rules, 2005);
    std::printf("\n-- data %s planted disjunctive rules --\n",
                with_rules ? "WITH" : "without");
    std::printf("%8s %10s %10s %12s %10s %12s %12s\n", "kappa", "frequent", "border",
                "apriori cnt", "FDFree+Bd-", "concise cnt", "rules");
    for (std::int64_t kappa : {30, 90, 180, 450}) {
      AprioriResult apriori = *Apriori(b, kappa);
      ConciseRepresentation rep =
          *ConciseRepresentation::Build(b, {.min_support = kappa, .rule_arity = 2});
      std::printf("%8lld %10zu %10zu %12llu %10zu %12llu %12zu\n",
                  static_cast<long long>(kappa), apriori.frequent.size(),
                  apriori.negative_border.size(),
                  static_cast<unsigned long long>(apriori.candidates_counted), rep.size(),
                  static_cast<unsigned long long>(rep.candidates_counted()),
                  rep.rules().size());
    }
  }

  std::printf("\n-- rule arity (Kryszkiewicz–Gajek generalization), kappa=90 --\n");
  std::printf("%8s %12s %10s %12s\n", "arity", "FDFree", "border", "rules");
  BasketList b = MakeData(true, 2005);
  for (int arity : {0, 1, 2, 3, 4}) {
    ConciseRepresentation rep =
        *ConciseRepresentation::Build(b, {.min_support = 90, .rule_arity = arity});
    std::printf("%8d %12zu %10zu %12zu\n", arity, rep.fdfree().size(),
                rep.border().size(), rep.rules().size());
  }
  std::printf("\n");
}

void BM_Apriori(benchmark::State& state) {
  BasketList b = MakeData(true, 7);
  const std::int64_t kappa = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Apriori(b, kappa)->frequent.size());
  }
}
BENCHMARK(BM_Apriori)->Arg(30)->Arg(90)->Arg(300);

void BM_ConciseBuild(benchmark::State& state) {
  BasketList b = MakeData(true, 7);
  const std::int64_t kappa = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ConciseRepresentation::Build(b, {.min_support = kappa, .rule_arity = 2})->size());
  }
}
BENCHMARK(BM_ConciseBuild)->Arg(30)->Arg(90)->Arg(300);

void BM_DeriveSupport(benchmark::State& state) {
  BasketList b = MakeData(true, 7);
  ConciseRepresentation rep =
      *ConciseRepresentation::Build(b, {.min_support = 30, .rule_arity = 2});
  Rng rng(1);
  std::vector<ItemSet> queries;
  for (int i = 0; i < 64; ++i) queries.push_back(ItemSet(rng.RandomMask(14, 0.3)));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rep.Derive(queries[i++ % queries.size()]).frequent);
  }
}
BENCHMARK(BM_DeriveSupport);

}  // namespace
}  // namespace diffc

int main(int argc, char** argv) {
  diffc::PrintConciseTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
