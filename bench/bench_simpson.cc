// Experiment E8 — the relational side (Section 7): cost of computing
// Simpson functions (exact rational arithmetic over all 2^n attribute
// sets) and of checking positive boolean dependencies (O(|r|^2) tuple
// pairs), plus the Proposition 7.3 agreement rate between the two
// satisfaction routes on random relations.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <set>

#include "core/function_ops.h"
#include "relational/boolean_dependency.h"
#include "relational/distribution.h"
#include "relational/simpson.h"
#include "util/random.h"

namespace diffc {
namespace {

Relation RandomRelation(Rng& rng, int attrs, int tuples, int domain) {
  std::vector<std::vector<int>> rows;
  std::set<std::vector<int>> seen;
  while (static_cast<int>(rows.size()) < tuples) {
    std::vector<int> row(attrs);
    for (int a = 0; a < attrs; ++a) row[a] = static_cast<int>(rng.UniformInt(0, domain - 1));
    if (seen.insert(row).second) rows.push_back(row);
  }
  return *Relation::Make(attrs, rows);
}

DifferentialConstraint RandomConstraint(Rng& rng, int n) {
  ItemSet lhs(rng.RandomMask(n, 0.3));
  std::vector<ItemSet> family;
  for (int i = 0; i < 2; ++i) {
    Mask m = rng.RandomMask(n, 0.35);
    if (m == 0) m = Mask{1} << rng.UniformInt(0, n - 1);
    family.push_back(ItemSet(m));
  }
  return DifferentialConstraint(lhs, SetFamily(std::move(family)));
}

void PrintSimpsonTable() {
  std::printf("=== E8: Simpson functions & boolean dependencies ===\n");
  std::printf("%8s %8s %16s %16s %10s\n", "attrs", "tuples", "simpson(ms)",
              "booldep(us)", "agree");
  for (int attrs : {6, 8, 10}) {
    for (int tuples : {20, 100}) {
      Rng rng(attrs * 100 + tuples);
      Relation r = RandomRelation(rng, attrs, tuples, 3);
      Distribution p = *Distribution::Uniform(r.size());

      auto t0 = std::chrono::steady_clock::now();
      SetFunction<Rational> simpson = *SimpsonFunction(r, p);
      auto t1 = std::chrono::steady_clock::now();
      SetFunction<Rational> density = Density(simpson);

      std::vector<DifferentialConstraint> goals;
      for (int i = 0; i < 40; ++i) goals.push_back(RandomConstraint(rng, attrs));
      auto t2 = std::chrono::steady_clock::now();
      for (const DifferentialConstraint& g : goals) {
        benchmark::DoNotOptimize(SatisfiesBooleanDependency(r, g));
      }
      auto t3 = std::chrono::steady_clock::now();

      bool agree = true;
      for (const DifferentialConstraint& g : goals) {
        if (SatisfiesBooleanDependency(r, g) != SatisfiesWithDensity(density, g)) {
          agree = false;
        }
      }
      std::printf("%8d %8d %16.2f %16.2f %10s\n", attrs, tuples,
                  std::chrono::duration<double, std::milli>(t1 - t0).count(),
                  std::chrono::duration<double, std::micro>(t3 - t2).count() / 40,
                  agree ? "yes" : "NO");
    }
  }
  std::printf("\n");
}

void BM_SimpsonFunction(benchmark::State& state) {
  const int attrs = static_cast<int>(state.range(0));
  const int tuples = static_cast<int>(state.range(1));
  Rng rng(attrs + tuples);
  Relation r = RandomRelation(rng, attrs, tuples, 3);
  Distribution p = *Distribution::Uniform(r.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimpsonFunction(r, p)->at(Mask{0}));
  }
}
BENCHMARK(BM_SimpsonFunction)->Args({6, 50})->Args({8, 50})->Args({10, 50})->Args({8, 200});

void BM_SimpsonDensityDirect(benchmark::State& state) {
  const int attrs = 6;
  const int tuples = static_cast<int>(state.range(0));
  Rng rng(tuples);
  Relation r = RandomRelation(rng, attrs, tuples, 3);
  Distribution p = *Distribution::Uniform(r.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimpsonDensityDirect(r, p)->at(Mask{0}));
  }
}
BENCHMARK(BM_SimpsonDensityDirect)->Arg(10)->Arg(30)->Arg(100);

void BM_BooleanDependency(benchmark::State& state) {
  const int attrs = 12;
  const int tuples = static_cast<int>(state.range(0));
  Rng rng(tuples + 1);
  Relation r = RandomRelation(rng, attrs, tuples, 3);
  DifferentialConstraint c = RandomConstraint(rng, attrs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SatisfiesBooleanDependency(r, c));
  }
}
BENCHMARK(BM_BooleanDependency)->Arg(50)->Arg(200)->Arg(800);

}  // namespace
}  // namespace diffc

int main(int argc, char** argv) {
  diffc::PrintSimpsonTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
