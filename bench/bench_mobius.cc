// Experiment E4 — Möbius/zeta transforms (Remark 2.3): the fast
// O(n·2^n) superset transforms against the naive O(4^n) definition, plus
// the round-trip identity cost. These transforms underpin every density
// computation in the library (satisfaction, support functions, Simpson
// functions).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "lattice/mobius.h"
#include "util/random.h"
#include "util/rational.h"

namespace diffc {
namespace {

SetFunction<std::int64_t> RandomFunction(int n, std::uint64_t seed) {
  Rng rng(seed);
  SetFunction<std::int64_t> f = *SetFunction<std::int64_t>::Make(n);
  for (Mask m = 0; m < f.size(); ++m) f.at(m) = rng.UniformInt(-100, 100);
  return f;
}

void PrintTransformTable() {
  std::printf("=== E4: density computation, naive O(4^n) vs fast O(n*2^n) ===\n");
  std::printf("%6s %14s %14s %10s\n", "n", "naive(ms)", "fast(ms)", "equal");
  for (int n : {8, 10, 12, 14}) {
    SetFunction<std::int64_t> f = RandomFunction(n, n);
    auto t0 = std::chrono::steady_clock::now();
    SetFunction<std::int64_t> naive = NaiveDensity(f);
    auto t1 = std::chrono::steady_clock::now();
    SetFunction<std::int64_t> fast = Density(f);
    auto t2 = std::chrono::steady_clock::now();
    std::printf("%6d %14.3f %14.3f %10s\n", n,
                std::chrono::duration<double, std::milli>(t1 - t0).count(),
                std::chrono::duration<double, std::milli>(t2 - t1).count(),
                naive == fast ? "yes" : "NO");
  }
  std::printf("(fast transform continues to n=%d and beyond; naive is already "
              "infeasible)\n\n",
              kMaxSetFunctionBits);
}

void BM_FastDensity(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SetFunction<std::int64_t> f = RandomFunction(n, 7);
  for (auto _ : state) {
    SetFunction<std::int64_t> d = f;
    MobiusSupersetInPlace(d);
    benchmark::DoNotOptimize(d.at(Mask{0}));
  }
  state.SetComplexityN(std::int64_t{1} << n);
}
BENCHMARK(BM_FastDensity)->Arg(10)->Arg(14)->Arg(18)->Arg(20);

void BM_NaiveDensity(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SetFunction<std::int64_t> f = RandomFunction(n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(NaiveDensity(f).at(Mask{0}));
  }
}
BENCHMARK(BM_NaiveDensity)->Arg(8)->Arg(10)->Arg(12);

void BM_RoundTrip(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SetFunction<std::int64_t> f = RandomFunction(n, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FromDensity(Density(f)) == f);
  }
}
BENCHMARK(BM_RoundTrip)->Arg(12)->Arg(16)->Arg(20);

void BM_RationalDensity(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  SetFunction<Rational> f = *SetFunction<Rational>::Make(n);
  for (Mask m = 0; m < f.size(); ++m) {
    f.at(m) = Rational(rng.UniformInt(-9, 9), rng.UniformInt(1, 9));
  }
  for (auto _ : state) {
    SetFunction<Rational> d = f;
    MobiusSupersetInPlace(d);
    benchmark::DoNotOptimize(d.at(Mask{0}));
  }
}
BENCHMARK(BM_RationalDensity)->Arg(8)->Arg(12);

}  // namespace
}  // namespace diffc

int main(int argc, char** argv) {
  diffc::PrintTransformTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
