// Experiment E11 — the two semantics of Remark 3.6: density-based (the
// paper's, coNP-complete) vs differential-based (the earlier work's,
// reducible to exact linear algebra over F(S) and hence polynomial in
// 2^n·|C|). The paper: "the relationship between these two implication
// problems is not yet well-understood." The table measures, on random
// instances, how often the two deciders agree and in which direction they
// diverge, plus their costs.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "core/differential_semantics.h"
#include "core/implication.h"
#include "util/random.h"

namespace diffc {
namespace {

DifferentialConstraint RandomConstraint(Rng& rng, int n, int members) {
  ItemSet lhs(rng.RandomMask(n, 0.3));
  std::vector<ItemSet> family;
  for (int i = 0; i < members; ++i) {
    Mask m = rng.RandomMask(n, 0.35);
    if (m == 0) m = Mask{1} << rng.UniformInt(0, n - 1);
    family.push_back(ItemSet(m));
  }
  return DifferentialConstraint(lhs, SetFamily(std::move(family)));
}

void PrintSemanticsGapTable() {
  std::printf("=== E11: density vs differential semantics (Remark 3.6) ===\n");
  std::printf("%4s %6s %8s %10s %14s %14s\n", "n", "|C|", "agree", "dens-only",
              "diff-only", "queries");
  for (int n : {4, 5, 6}) {
    for (int count : {1, 2, 4}) {
      Rng rng(n * 100 + count);
      int agree = 0, density_only = 0, diff_only = 0, total = 0;
      for (int iter = 0; iter < 100; ++iter) {
        ConstraintSet premises;
        for (int i = 0; i < count; ++i) premises.push_back(RandomConstraint(rng, n, 2));
        DifferentialConstraint goal = RandomConstraint(rng, n, 2);
        bool density = CheckImplicationSat(n, premises, goal)->implied;
        bool differential =
            CheckImplicationDifferentialSemantics(n, premises, goal)->implied;
        ++total;
        if (density == differential) {
          ++agree;
        } else if (density) {
          ++density_only;
        } else {
          ++diff_only;
        }
      }
      std::printf("%4d %6d %8d %10d %14d %14d\n", n, count, agree, density_only,
                  diff_only, total);
    }
  }
  std::printf("(dens-only: implied under the paper's density semantics but not the\n"
              " differential one; diff-only: the converse. Across all sampled\n"
              " instances diff-only stays at 0 — empirical support for the\n"
              " conjecture that differential-semantics implication entails\n"
              " density-semantics implication, while the converse clearly fails;\n"
              " the paper calls this relationship not yet well-understood)\n\n");
}

void BM_DensityImplication(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n);
  ConstraintSet premises;
  for (int i = 0; i < 4; ++i) premises.push_back(RandomConstraint(rng, n, 2));
  DifferentialConstraint goal = RandomConstraint(rng, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckImplicationSat(n, premises, goal)->implied);
  }
}
BENCHMARK(BM_DensityImplication)->Arg(6)->Arg(8)->Arg(10);

void BM_DifferentialImplication(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n);
  ConstraintSet premises;
  for (int i = 0; i < 4; ++i) premises.push_back(RandomConstraint(rng, n, 2));
  DifferentialConstraint goal = RandomConstraint(rng, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CheckImplicationDifferentialSemantics(n, premises, goal)->implied);
  }
}
BENCHMARK(BM_DifferentialImplication)->Arg(6)->Arg(8)->Arg(10);

}  // namespace
}  // namespace diffc

int main(int argc, char** argv) {
  diffc::PrintSemanticsGapTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
