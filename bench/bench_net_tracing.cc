// Experiment E8 — request-tracing overhead on the diffcd loopback path:
// the same CHECK_BATCH workload through an in-process server + client pair
// at three head-sampling rates:
//
//   off      — trace_sample_rate = 0 on both ends: the tracing fast path
//              (one branch, no span allocation) — the baseline.
//   default  — 0.01, the shipped default: ~1% of calls record full span
//              trees into the trace store.
//   full     — 1.0: every call traced client- and server-side, engine
//              spans grafted, stores written.
//
// The headline number is the default-rate overhead over off (the
// acceptance bar is <= 2%, encoded in bench/BENCH_E8.schema.json and
// checked in CI); the full row bounds the worst case an operator can dial
// in. Results land in BENCH_E8.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "obs/trace_store.h"
#include "util/random.h"

namespace diffc {
namespace {

DifferentialConstraint RandomConstraint(Rng& rng, int n, int members) {
  ItemSet lhs(rng.RandomMask(n, 2.0 / n));
  std::vector<ItemSet> family;
  for (int i = 0; i < members; ++i) {
    Mask m = rng.RandomMask(n, 2.0 / n);
    if (m == 0) m = Mask{1} << rng.UniformInt(0, n - 1);
    family.push_back(ItemSet(m));
  }
  return DifferentialConstraint(lhs, SetFamily(std::move(family)));
}

// The E8 workload: a small premise set and cheap goal batches, so the
// wire + dispatch + tracing path dominates over engine time — the regime
// where per-request tracing overhead is most visible.
void MakeWorkload(int n, ConstraintSet* premises,
                  std::vector<DifferentialConstraint>* goals) {
  Rng rng(20260809);
  premises->clear();
  for (int i = 0; i < 12; ++i) premises->push_back(RandomConstraint(rng, n, 2));
  goals->clear();
  for (int i = 0; i < 8; ++i) goals->push_back(RandomConstraint(rng, n, 2));
}

double MeasureMs(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

struct RateRow {
  double ms = 0;                // best-of-trials batch wall time
  std::uint64_t implied = 0;    // verdict checksum across all calls
  std::uint64_t stored = 0;     // traces added to the store during the run
};

// One server + one client at the given sampling rate; `calls` CHECK_BATCH
// round trips per trial, best (min) of `trials` — the standard estimator
// for a fixed workload under scheduler noise, applied identically to
// every row so the ratio is fair.
RateRow RunRate(double rate, int calls, int trials, int n,
                const ConstraintSet& premises,
                const std::vector<DifferentialConstraint>& goals) {
  RateRow row;
  net::ServerOptions sopts;
  sopts.listen_address = "127.0.0.1:0";
  sopts.engine.num_threads = 1;
  sopts.trace_sample_rate = rate;
  net::DiffcdServer server(sopts);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", started.ToString().c_str());
    return row;
  }
  net::ClientOptions copts;
  copts.seed = 20260809;
  copts.trace_sample_rate = rate;
  Result<net::DiffcClient> client =
      net::DiffcClient::Connect(server.bound_address(), copts);
  if (!client.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", client.status().ToString().c_str());
    return row;
  }
  Result<net::RegisterOkMsg> reg = client->RegisterPremises(n, premises);
  if (!reg.ok()) {
    std::fprintf(stderr, "register failed: %s\n", reg.status().ToString().c_str());
    return row;
  }

  const std::uint64_t stored_before = obs::GlobalTraceStore().total();
  bool failed = false;
  auto run_calls = [&] {
    for (int c = 0; c < calls; ++c) {
      Result<net::BatchResultMsg> res = client->CheckBatch(reg->handle, n, goals);
      if (!res.ok()) {
        failed = true;
        return;
      }
      row.implied += res->stats.implied;
    }
  };
  // Warm caches (witness/nonce/session) out of the measured region.
  run_calls();
  row.implied = 0;
  double best = 1e100;
  for (int t = 0; t < trials && !failed; ++t) {
    row.implied = 0;
    best = std::min(best, MeasureMs(run_calls));
  }
  if (failed) {
    std::fprintf(stderr, "CHECK_BATCH failed at rate %.2f\n", rate);
    return row;
  }
  row.ms = best;
  row.stored = obs::GlobalTraceStore().total() - stored_before;
  (void)server.Shutdown();  // Drain before the next rate's server binds.
  return row;
}

void RunTracingExperiment() {
  const int n = 16;
  const int kCalls = 200;
  const int kTrials = 7;
  std::printf("=== E8: tracing overhead on the loopback CHECK_BATCH path "
              "(n=%d, %d calls/trial, best of %d) ===\n", n, kCalls, kTrials);
  ConstraintSet premises;
  std::vector<DifferentialConstraint> goals;
  MakeWorkload(n, &premises, &goals);

  const RateRow off = RunRate(0.0, kCalls, kTrials, n, premises, goals);
  const RateRow def = RunRate(0.01, kCalls, kTrials, n, premises, goals);
  const RateRow full = RunRate(1.0, kCalls, kTrials, n, premises, goals);
  if (off.ms <= 0 || def.ms <= 0 || full.ms <= 0) {
    std::fprintf(stderr, "E8 run failed; no BENCH_E8.json written\n");
    return;
  }

  const double overhead_default_pct = (def.ms / off.ms - 1.0) * 100.0;
  const double overhead_full_pct = (full.ms / off.ms - 1.0) * 100.0;
  const bool verdicts_agree = off.implied == def.implied && off.implied == full.implied;
  std::printf("%10s %12s %12s %10s\n", "rate", "batch(ms)", "overhead", "stored");
  std::printf("%10s %12.3f %12s %10llu\n", "0.00", off.ms, "-",
              static_cast<unsigned long long>(off.stored));
  std::printf("%10s %12.3f %10.2f%% %10llu\n", "0.01", def.ms, overhead_default_pct,
              static_cast<unsigned long long>(def.stored));
  std::printf("%10s %12.3f %10.2f%% %10llu\n", "1.00", full.ms, overhead_full_pct,
              static_cast<unsigned long long>(full.stored));
  std::printf("verdicts agree across rates: %s\n", verdicts_agree ? "yes" : "NO");

  // Machine-readable record, shape-checked against BENCH_E8.schema.json
  // (which pins overhead_default_pct <= 2).
  std::ofstream json("BENCH_E8.json");
  json << "{\n";
  json << "  \"experiment\": \"E8\",\n";
  json << "  \"n\": " << n << ",\n";
  json << "  \"calls_per_trial\": " << kCalls << ",\n";
  json << "  \"goals_per_call\": " << goals.size() << ",\n";
  json << "  \"trials\": " << kTrials << ",\n";
  json << "  \"off_ms\": " << off.ms << ",\n";
  json << "  \"default_ms\": " << def.ms << ",\n";
  json << "  \"full_ms\": " << full.ms << ",\n";
  json << "  \"default_sample_rate\": 0.01,\n";
  json << "  \"overhead_default_pct\": " << overhead_default_pct << ",\n";
  json << "  \"overhead_full_pct\": " << overhead_full_pct << ",\n";
  json << "  \"traces_stored_full\": " << full.stored << ",\n";
  json << "  \"verdicts_agree\": " << (verdicts_agree ? "true" : "false") << "\n";
  json << "}\n";
  std::printf("wrote BENCH_E8.json\n\n");
}

void BM_CheckBatchLoopback(benchmark::State& state) {
  const int n = 16;
  ConstraintSet premises;
  std::vector<DifferentialConstraint> goals;
  MakeWorkload(n, &premises, &goals);
  net::ServerOptions sopts;
  sopts.listen_address = "127.0.0.1:0";
  sopts.engine.num_threads = 1;
  sopts.trace_sample_rate = state.range(0) / 100.0;
  net::DiffcdServer server(sopts);
  if (!server.Start().ok()) {
    state.SkipWithError("server start failed");
    return;
  }
  net::ClientOptions copts;
  copts.seed = 20260809;
  copts.trace_sample_rate = state.range(0) / 100.0;
  Result<net::DiffcClient> client =
      net::DiffcClient::Connect(server.bound_address(), copts);
  if (!client.ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  Result<net::RegisterOkMsg> reg = client->RegisterPremises(n, premises);
  if (!reg.ok()) {
    state.SkipWithError("register failed");
    return;
  }
  for (auto _ : state) {
    Result<net::BatchResultMsg> res = client->CheckBatch(reg->handle, n, goals);
    if (!res.ok()) {
      state.SkipWithError("CHECK_BATCH failed");
      return;
    }
    benchmark::DoNotOptimize(res->stats.implied);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int>(goals.size()));
}
BENCHMARK(BM_CheckBatchLoopback)->Arg(0)->Arg(100)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace diffc

int main(int argc, char** argv) {
  // Fast path for CI schema validation: only the E8 table.
  if (std::getenv("DIFFC_BENCH_E8_ONLY") != nullptr) {
    diffc::RunTracingExperiment();
    return 0;
  }
  diffc::RunTracingExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
