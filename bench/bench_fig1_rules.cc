// Experiment F1 — regenerates the content of the paper's FIGURE 1: the
// inference system {triviality, augmentation, addition, elimination} is
// sound and complete.
//
// The table verifies, on thousands of random instances per rule, that
// every rule application is semantically sound (premises imply conclusion,
// checked with the SAT decision procedure), and that semantic implication
// and derivability coincide (completeness, Theorem 4.8). The registered
// benchmarks measure the validators and the soundness checks.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/implication.h"
#include "core/inference.h"
#include "util/random.h"

namespace diffc {
namespace {

DifferentialConstraint RandomConstraint(Rng& rng, int n, int members) {
  ItemSet lhs(rng.RandomMask(n, 0.25));
  std::vector<ItemSet> family;
  for (int i = 0; i < members; ++i) {
    Mask m = rng.RandomMask(n, 0.3);
    if (m == 0) m = Mask{1} << rng.UniformInt(0, n - 1);
    family.push_back(ItemSet(m));
  }
  return DifferentialConstraint(lhs, SetFamily(std::move(family)));
}

struct RuleStats {
  const char* rule;
  int instances = 0;
  int unsound = 0;
};

void PrintFigure1Table() {
  const int n = 6;
  const int kInstances = 400;
  Rng rng(2005);
  RuleStats rows[4] = {{"triviality"}, {"augmentation"}, {"addition"}, {"elimination"}};

  for (int i = 0; i < kInstances; ++i) {
    // Triviality.
    {
      ItemSet lhs(rng.RandomMask(n, 0.5) | 1);
      DifferentialConstraint c(lhs,
                               SetFamily({ItemSet(rng.RandomNonemptySubsetOf(lhs.bits()))}));
      ++rows[0].instances;
      if (!CheckImplicationSat(n, {}, c)->implied) ++rows[0].unsound;
    }
    // Augmentation.
    {
      DifferentialConstraint p = RandomConstraint(rng, n, 2);
      DifferentialConstraint c(p.lhs().Union(ItemSet(rng.RandomMask(n, 0.3))), p.rhs());
      ++rows[1].instances;
      if (!CheckImplicationSat(n, {p}, c)->implied) ++rows[1].unsound;
    }
    // Addition.
    {
      DifferentialConstraint p = RandomConstraint(rng, n, 2);
      DifferentialConstraint c(p.lhs(), p.rhs().WithMember(ItemSet(rng.RandomMask(n, 0.3))));
      ++rows[2].instances;
      if (!CheckImplicationSat(n, {p}, c)->implied) ++rows[2].unsound;
    }
    // Elimination.
    {
      DifferentialConstraint conclusion = RandomConstraint(rng, n, 2);
      ItemSet z(rng.RandomMask(n, 0.3));
      DifferentialConstraint p1(conclusion.lhs(), conclusion.rhs().WithMember(z));
      DifferentialConstraint p2(conclusion.lhs().Union(z), conclusion.rhs());
      ++rows[3].instances;
      if (!CheckImplicationSat(n, {p1, p2}, conclusion)->implied) ++rows[3].unsound;
    }
  }

  std::printf("=== Figure 1: soundness of the inference system (n=%d) ===\n", n);
  std::printf("%-14s %10s %10s\n", "rule", "instances", "unsound");
  for (const RuleStats& r : rows) {
    std::printf("%-14s %10d %10d\n", r.rule, r.instances, r.unsound);
  }

  // Completeness: derivability agrees with semantic implication.
  int agree = 0, total = 0;
  for (int i = 0; i < 150; ++i) {
    ConstraintSet premises;
    int count = static_cast<int>(rng.UniformInt(1, 3));
    for (int j = 0; j < count; ++j) premises.push_back(RandomConstraint(rng, n, 2));
    DifferentialConstraint goal = RandomConstraint(rng, n, 2);
    bool implied = CheckImplicationSat(n, premises, goal)->implied;
    Result<Derivation> d = DeriveImplied(n, premises, goal);
    bool derivable = d.ok() && ValidateDerivation(n, premises, *d).ok();
    ++total;
    if (implied == derivable) ++agree;
  }
  std::printf("\ncompleteness (derivable == implied): %d/%d instances agree\n\n", agree,
              total);
}

void BM_ValidateElimination(benchmark::State& state) {
  Rng rng(1);
  const int n = 8;
  DifferentialConstraint conclusion = RandomConstraint(rng, n, 3);
  ItemSet z(rng.RandomMask(n, 0.3));
  DifferentialConstraint p1(conclusion.lhs(), conclusion.rhs().WithMember(z));
  DifferentialConstraint p2(conclusion.lhs().Union(z), conclusion.rhs());
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsValidElimination(p1, p2, conclusion));
  }
}
BENCHMARK(BM_ValidateElimination);

void BM_RuleSoundnessCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  DifferentialConstraint p = RandomConstraint(rng, n, 2);
  DifferentialConstraint c(p.lhs().Union(ItemSet(rng.RandomMask(n, 0.3))), p.rhs());
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckImplicationSat(n, {p}, c)->implied);
  }
}
BENCHMARK(BM_RuleSoundnessCheck)->Arg(8)->Arg(16)->Arg(32);

void BM_ValidateFullDerivation(benchmark::State& state) {
  const int n = 5;
  Rng rng(3);
  ConstraintSet premises{RandomConstraint(rng, n, 2), RandomConstraint(rng, n, 2)};
  Result<Derivation> d = Status::NotFound("");
  DifferentialConstraint goal = RandomConstraint(rng, n, 2);
  // Look for an implied goal with a non-degenerate proof.
  while (!d.ok() || d->size() < 4) {
    goal = RandomConstraint(rng, n, 2);
    d = DeriveImplied(n, premises, goal);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ValidateDerivation(n, premises, *d).ok());
  }
  state.counters["steps"] = d->size();
}
BENCHMARK(BM_ValidateFullDerivation);

}  // namespace
}  // namespace diffc

int main(int argc, char** argv) {
  diffc::PrintFigure1Table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
