// Experiment E2 — coNP-hardness in practice (Proposition 5.5): random DNF
// tautology instances are reduced to differential-constraint implication
// (C_φ |= ∅ -> {}) and decided with the DPLL procedure. The table tracks
// running time and tautology rate across the instance-density spectrum;
// the benchmarks measure the reduction target directly.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "core/implication.h"
#include "prop/tautology.h"

namespace diffc {
namespace {

void PrintHardnessTable() {
  std::printf("=== E2: DNF tautology via differential implication ===\n");
  std::printf("%6s %10s %12s %14s %14s\n", "vars", "conjuncts", "tautologies",
              "avg ms (sat)", "agree w/ 2^n");
  for (int vars : {10, 14, 18}) {
    for (int conjuncts : {vars, vars * 4, vars * 16}) {
      const int kTrials = 20;
      int tautologies = 0;
      bool agree = true;
      auto start = std::chrono::steady_clock::now();
      for (int t = 0; t < kTrials; ++t) {
        prop::DnfFormula f = prop::RandomDnf(vars, conjuncts, 3, vars * 1000 + conjuncts + t);
        ConstraintSet c = DnfTautologyReduction(f);
        Result<ImplicationOutcome> r = CheckImplicationSat(vars, c, TautologyGoal());
        if (!r.ok()) continue;
        if (r->implied) ++tautologies;
        Result<bool> brute = prop::IsDnfTautologyExhaustive(f);
        if (brute.ok() && *brute != r->implied) agree = false;
      }
      auto end = std::chrono::steady_clock::now();
      double avg_ms =
          std::chrono::duration<double, std::milli>(end - start).count() / kTrials;
      std::printf("%6d %10d %12d %14.3f %14s\n", vars, conjuncts, tautologies, avg_ms,
                  agree ? "yes" : "NO");
    }
  }
  std::printf("\n");
}

void BM_TautologyReductionDecide(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  const int conjuncts = static_cast<int>(state.range(1));
  prop::DnfFormula f = prop::RandomDnf(vars, conjuncts, 3, 42);
  ConstraintSet c = DnfTautologyReduction(f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckImplicationSat(vars, c, TautologyGoal())->implied);
  }
}
BENCHMARK(BM_TautologyReductionDecide)
    ->Args({12, 48})
    ->Args({16, 64})
    ->Args({20, 80})
    ->Args({20, 320});

void BM_DirectDnfTautology(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  prop::DnfFormula f = prop::RandomDnf(vars, vars * 4, 3, 43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(*prop::IsDnfTautology(f));
  }
}
BENCHMARK(BM_DirectDnfTautology)->Arg(12)->Arg(16)->Arg(20);

}  // namespace
}  // namespace diffc

int main(int argc, char** argv) {
  diffc::PrintHardnessTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
