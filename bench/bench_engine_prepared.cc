// Experiment E5 — prepared premises vs the per-query compilation path:
// the same revalidation workload (repeated premises, mostly-derived goals)
// through three engine configurations:
//
//   per-query  — `use_prepared_cache = false`: every CheckOne re-canonicalizes,
//                re-translates, and re-indexes the premise set from scratch.
//   prepared   — one explicit `Prepare()` call, then CheckOne on the shared
//                artifact: compilation amortized over the whole run.
//   cached     — the default unprepared API: the process-wide
//                PreparedPremisesCache turns every call after the first into
//                a prepared one.
//
// The headline number is prepared-vs-per-query speedup (the acceptance bar
// is >= 1.5x, encoded in bench/BENCH_E5.schema.json and checked in CI);
// the cached row shows the unchanged old API recovers almost all of it.
// Results land in BENCH_E5.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/caches.h"
#include "engine/implication_engine.h"
#include "util/random.h"

namespace diffc {
namespace {

DifferentialConstraint RandomConstraint(Rng& rng, int n, int members) {
  ItemSet lhs(rng.RandomMask(n, 2.0 / n));
  std::vector<ItemSet> family;
  for (int i = 0; i < members; ++i) {
    Mask m = rng.RandomMask(n, 2.0 / n);
    if (m == 0) m = Mask{1} << rng.UniformInt(0, n - 1);
    family.push_back(ItemSet(m));
  }
  return DifferentialConstraint(lhs, SetFamily(std::move(family)));
}

// The E5 workload: a premise set big enough that compiling it is real work
// (with trivial and duplicate members for canonicalization to earn its
// keep), and goals that are cheap once compiled — mostly augmented
// premises, the derived-constraint revalidation pattern.
void MakeWorkload(int n, int premise_count, int num_queries, ConstraintSet* premises,
                  std::vector<DifferentialConstraint>* goals) {
  Rng rng(20260806);
  premises->clear();
  for (int i = 0; i < premise_count; ++i) {
    premises->push_back(RandomConstraint(rng, n, 2));
  }
  // Trivial premise (member inside the left-hand side) plus duplicates:
  // dropped at canonicalization.
  premises->push_back(DifferentialConstraint(ItemSet{0, 1}, SetFamily({ItemSet{1}})));
  premises->push_back((*premises)[0]);
  premises->push_back((*premises)[1]);
  goals->clear();
  goals->reserve(num_queries);
  for (int i = 0; i < num_queries; ++i) {
    if (i % 10 != 9) {
      const DifferentialConstraint& p = (*premises)[i % premise_count];
      goals->push_back(DifferentialConstraint(
          p.lhs().Union(ItemSet(rng.RandomMask(n, 2.0 / n))), p.rhs()));
    } else {
      goals->push_back(RandomConstraint(rng, n, 2));
    }
  }
}

double MeasureMs(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

void RunPreparedExperiment() {
  std::printf("=== E5: prepared premises vs per-query compilation "
              "(n=32, |C|=67, 2000 queries) ===\n");
  const int n = 32;
  const int kPremises = 64;  // +3 trivial/duplicate seeds in MakeWorkload.
  const int kQueries = 2000;
  const int kTrials = 5;
  ConstraintSet premises;
  std::vector<DifferentialConstraint> goals;
  MakeWorkload(n, kPremises, kQueries, &premises, &goals);

  EngineOptions per_query_opts;
  per_query_opts.num_threads = 1;
  per_query_opts.use_prepared_cache = false;
  ImplicationEngine per_query_engine(per_query_opts);

  EngineOptions default_opts;
  default_opts.num_threads = 1;
  ImplicationEngine engine(default_opts);

  Result<std::shared_ptr<const PreparedPremises>> prepared = engine.Prepare(n, premises);
  if (!prepared.ok()) {
    std::fprintf(stderr, "Prepare failed: %s\n", prepared.status().ToString().c_str());
    return;
  }

  // Warm the witness cache once so all three rows measure the steady state
  // of *premise* compilation, not first-touch witness enumeration.
  for (const DifferentialConstraint& g : goals) (void)engine.CheckOne(*prepared, g);

  std::vector<bool> reference;
  reference.reserve(goals.size());
  for (const DifferentialConstraint& g : goals) {
    EngineQueryResult r = engine.CheckOne(*prepared, g);
    reference.push_back(r.status.ok() && r.outcome.implied);
  }

  bool all_agree = true;
  auto run_row = [&](ImplicationEngine& e, auto&& check) {
    double best = 1e100;
    for (int t = 0; t < kTrials; ++t) {
      best = std::min(best, MeasureMs([&] {
        for (std::size_t i = 0; i < goals.size(); ++i) {
          EngineQueryResult r = check(e, goals[i]);
          if (!r.status.ok() || r.outcome.implied != reference[i]) all_agree = false;
        }
      }));
    }
    return best;
  };

  const double per_query_ms =
      run_row(per_query_engine, [&](ImplicationEngine& e, const DifferentialConstraint& g) {
        return e.CheckOne(n, premises, g);
      });
  const double prepared_ms =
      run_row(engine, [&](ImplicationEngine& e, const DifferentialConstraint& g) {
        return e.CheckOne(*prepared, g);
      });
  const double cached_ms =
      run_row(engine, [&](ImplicationEngine& e, const DifferentialConstraint& g) {
        return e.CheckOne(n, premises, g);
      });

  const double prepared_speedup = prepared_ms > 0 ? per_query_ms / prepared_ms : 0.0;
  const double cached_speedup = cached_ms > 0 ? per_query_ms / cached_ms : 0.0;
  std::printf("%22s %12s %10s %10s\n", "", "batch(ms)", "speedup", "agree");
  std::printf("%22s %12.3f %10s %10s\n", "per-query compile", per_query_ms, "1.00x", "-");
  std::printf("%22s %12.3f %9.2fx %10s\n", "explicit Prepare()", prepared_ms,
              prepared_speedup, all_agree ? "yes" : "NO");
  std::printf("%22s %12.3f %9.2fx %10s\n", "prepared cache", cached_ms, cached_speedup,
              all_agree ? "yes" : "NO");

  const PrepareStats& ps = (*prepared)->stats();
  const CacheCounters cache = GlobalPreparedPremisesCache().counters();
  std::printf("prepare: %zu -> %zu constraints (%zu trivial, %zu duplicates dropped), "
              "%d vars, %zu clauses, %.3fms build\n",
              ps.input_constraints, ps.canonical_constraints, ps.dropped_trivial,
              ps.dropped_duplicates, ps.translation_vars, ps.translation_clauses,
              static_cast<double>(ps.total_ns) / 1e6);
  std::printf("prepared cache: %.4f lifetime hit ratio\n\n", cache.HitRatio());

  // Machine-readable record, shape-checked against BENCH_E5.schema.json
  // (which pins prepared_speedup >= 1.5).
  std::ofstream json("BENCH_E5.json");
  json << "{\n";
  json << "  \"experiment\": \"E5\",\n";
  json << "  \"n\": " << n << ",\n";
  json << "  \"premises\": " << premises.size() << ",\n";
  json << "  \"queries\": " << goals.size() << ",\n";
  json << "  \"trials\": " << kTrials << ",\n";
  json << "  \"per_query_ms\": " << per_query_ms << ",\n";
  json << "  \"prepared_ms\": " << prepared_ms << ",\n";
  json << "  \"cached_ms\": " << cached_ms << ",\n";
  json << "  \"prepared_speedup\": " << prepared_speedup << ",\n";
  json << "  \"cached_speedup\": " << cached_speedup << ",\n";
  json << "  \"verdicts_agree\": " << (all_agree ? "true" : "false") << ",\n";
  json << "  \"prepare\": {\"input_constraints\": " << ps.input_constraints
       << ", \"canonical_constraints\": " << ps.canonical_constraints
       << ", \"dropped_trivial\": " << ps.dropped_trivial
       << ", \"dropped_duplicates\": " << ps.dropped_duplicates
       << ", \"translation_vars\": " << ps.translation_vars
       << ", \"translation_clauses\": " << ps.translation_clauses
       << ", \"build_ms\": " << static_cast<double>(ps.total_ns) / 1e6 << "},\n";
  json << "  \"prepared_cache\": {\"hits\": " << cache.hits
       << ", \"misses\": " << cache.misses << ", \"hit_ratio\": " << cache.HitRatio()
       << "}\n";
  json << "}\n";
  std::printf("wrote BENCH_E5.json\n\n");
}

void BM_CheckOnePerQueryCompile(benchmark::State& state) {
  const int n = 32;
  ConstraintSet premises;
  std::vector<DifferentialConstraint> goals;
  MakeWorkload(n, static_cast<int>(state.range(0)), 64, &premises, &goals);
  EngineOptions opts;
  opts.num_threads = 1;
  opts.use_prepared_cache = false;
  ImplicationEngine engine(opts);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.CheckOne(n, premises, goals[i++ % goals.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CheckOnePerQueryCompile)->Arg(8)->Arg(64);

void BM_CheckOnePrepared(benchmark::State& state) {
  const int n = 32;
  ConstraintSet premises;
  std::vector<DifferentialConstraint> goals;
  MakeWorkload(n, static_cast<int>(state.range(0)), 64, &premises, &goals);
  EngineOptions opts;
  opts.num_threads = 1;
  ImplicationEngine engine(opts);
  Result<std::shared_ptr<const PreparedPremises>> prepared = engine.Prepare(n, premises);
  if (!prepared.ok()) {
    state.SkipWithError("Prepare failed");
    return;
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.CheckOne(*prepared, goals[i++ % goals.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CheckOnePrepared)->Arg(8)->Arg(64);

void BM_PrepareBuild(benchmark::State& state) {
  const int n = 32;
  ConstraintSet premises;
  std::vector<DifferentialConstraint> goals;
  MakeWorkload(n, static_cast<int>(state.range(0)), 1, &premises, &goals);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PreparedPremises::Build(n, premises));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrepareBuild)->Arg(8)->Arg(64)->Arg(256);

}  // namespace
}  // namespace diffc

int main(int argc, char** argv) {
  // Fast path for CI schema validation: only the E5 table.
  if (std::getenv("DIFFC_BENCH_E5_ONLY") != nullptr) {
    diffc::RunPreparedExperiment();
    return 0;
  }
  diffc::RunPreparedExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
