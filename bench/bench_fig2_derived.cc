// Experiment F2 — regenerates the content of the paper's FIGURE 2: the
// five derived rules (chain, projection, transitivity, separation, union)
// are derivable from the base system. For random instantiations of each
// rule pattern the proof generator produces an explicit base-rule
// derivation, which is machine-validated; the table reports success rates
// and proof sizes, the benchmarks the derivation cost per rule.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>

#include "core/inference.h"
#include "util/random.h"

namespace diffc {
namespace {

struct RuleInstance {
  ConstraintSet premises;
  DifferentialConstraint conclusion{ItemSet(), SetFamily()};
};

ItemSet NonemptySet(Rng& rng, int n) {
  return ItemSet(rng.RandomNonemptySubsetOf(FullMask(n)));
}

SetFamily RandomRest(Rng& rng, int n) {
  Mask m = rng.RandomMask(n, 0.3);
  if (m == 0) m = Mask{1} << rng.UniformInt(0, n - 1);
  return SetFamily({ItemSet(m)});
}

RuleInstance MakeChain(Rng& rng, int n) {
  ItemSet x(rng.RandomMask(n, 0.25)), y = NonemptySet(rng, n), z = NonemptySet(rng, n);
  SetFamily rest = RandomRest(rng, n);
  return {{DifferentialConstraint(x, rest.WithMember(y)),
           DifferentialConstraint(x.Union(y), rest.WithMember(z))},
          DifferentialConstraint(x, rest.WithMember(y.Union(z)))};
}

RuleInstance MakeProjection(Rng& rng, int n) {
  ItemSet x(rng.RandomMask(n, 0.25)), y = NonemptySet(rng, n);
  ItemSet z(rng.RandomMask(n, 0.3));
  SetFamily rest = RandomRest(rng, n);
  return {{DifferentialConstraint(x, rest.WithMember(y.Union(z)))},
          DifferentialConstraint(x, rest.WithMember(y))};
}

RuleInstance MakeTransitivity(Rng& rng, int n) {
  ItemSet x(rng.RandomMask(n, 0.25)), y = NonemptySet(rng, n), z = NonemptySet(rng, n);
  SetFamily rest = RandomRest(rng, n);
  return {{DifferentialConstraint(x, rest.WithMember(y)),
           DifferentialConstraint(y, rest.WithMember(z))},
          DifferentialConstraint(x, rest.WithMember(z))};
}

RuleInstance MakeSeparation(Rng& rng, int n) {
  ItemSet x(rng.RandomMask(n, 0.25)), y = NonemptySet(rng, n), z = NonemptySet(rng, n);
  SetFamily rest = RandomRest(rng, n);
  return {{DifferentialConstraint(x, rest.WithMember(y.Union(z)))},
          DifferentialConstraint(x, rest.WithMember(y).WithMember(z))};
}

RuleInstance MakeUnion(Rng& rng, int n) {
  ItemSet x(rng.RandomMask(n, 0.25)), y = NonemptySet(rng, n), z = NonemptySet(rng, n);
  SetFamily rest = RandomRest(rng, n);
  return {{DifferentialConstraint(x, rest.WithMember(y)),
           DifferentialConstraint(x, rest.WithMember(z))},
          DifferentialConstraint(x, rest.WithMember(y.Union(z)))};
}

using Maker = std::function<RuleInstance(Rng&, int)>;

struct Row {
  const char* rule;
  Maker make;
};

const Row kRows[] = {
    {"chain", MakeChain},           {"projection", MakeProjection},
    {"transitivity", MakeTransitivity}, {"separation", MakeSeparation},
    {"union", MakeUnion},
};

void PrintFigure2Table() {
  const int n = 6;
  const int kInstances = 100;
  std::printf("=== Figure 2: derived rules, machine-derived from Figure 1 (n=%d) ===\n",
              n);
  std::printf("%-14s %10s %10s %12s %12s %12s\n", "rule", "instances", "derived",
              "avg steps", "avg pruned", "max pruned");
  for (const Row& row : kRows) {
    Rng rng(reinterpret_cast<std::uintptr_t>(row.rule) & 0xffff);
    int derived = 0;
    long total_steps = 0, total_pruned = 0, max_pruned = 0;
    for (int i = 0; i < kInstances; ++i) {
      RuleInstance inst = row.make(rng, n);
      Result<Derivation> d = DeriveImplied(n, inst.premises, inst.conclusion);
      if (d.ok() && ValidateDerivation(n, inst.premises, *d).ok() &&
          d->conclusion() == inst.conclusion) {
        ++derived;
        total_steps += d->size();
        Derivation pruned = PruneDerivation(*d);
        total_pruned += pruned.size();
        max_pruned = std::max<long>(max_pruned, pruned.size());
      }
    }
    std::printf("%-14s %10d %10d %12.1f %12.1f %12ld\n", row.rule, kInstances, derived,
                derived ? static_cast<double>(total_steps) / derived : 0.0,
                derived ? static_cast<double>(total_pruned) / derived : 0.0, max_pruned);
  }
  std::printf("\n");
}

void BM_DeriveRule(benchmark::State& state) {
  const Row& row = kRows[state.range(0)];
  const int n = 5;
  Rng rng(11 + state.range(0));
  RuleInstance inst = row.make(rng, n);
  while (inst.conclusion.IsTrivial()) inst = row.make(rng, n);  // Non-degenerate.
  for (auto _ : state) {
    Result<Derivation> d = DeriveImplied(n, inst.premises, inst.conclusion);
    benchmark::DoNotOptimize(d.ok());
  }
  state.SetLabel(row.rule);
}
BENCHMARK(BM_DeriveRule)->DenseRange(0, 4);

}  // namespace
}  // namespace diffc

int main(int argc, char** argv) {
  diffc::PrintFigure2Table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
