// Experiment E5 — witness sets and lattice decompositions (Definitions
// 2.5/2.6): minimal-transversal enumeration cost and the size statistics
// of L(X, Y) as the right-hand family's shape varies. Lattice
// decompositions are the paper's central syntactic object; their interval
// covers (built from minimal witness sets) are the compressed form.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "lattice/decomposition.h"
#include "lattice/hitting_set.h"
#include "util/random.h"

namespace diffc {
namespace {

SetFamily RandomFamily(Rng& rng, int n, int members, double density) {
  std::vector<ItemSet> out;
  for (int i = 0; i < members; ++i) {
    Mask m = rng.RandomMask(n, density);
    if (m == 0) m = Mask{1} << rng.UniformInt(0, n - 1);
    out.push_back(ItemSet(m));
  }
  return SetFamily(std::move(out));
}

void PrintWitnessTable() {
  std::printf("=== E5: witness sets & lattice decompositions (n=16) ===\n");
  std::printf("%8s %9s %12s %12s %14s %12s\n", "members", "density", "witnesses",
              "min.wit.", "|L(X,Y)|", "intervals");
  const int n = 16;
  for (int members : {2, 4, 6}) {
    for (double density : {0.15, 0.3}) {
      Rng rng(members * 100 + static_cast<int>(density * 100));
      double avg_wit = 0, avg_min = 0, avg_l = 0, avg_iv = 0;
      const int kTrials = 10;
      for (int t = 0; t < kTrials; ++t) {
        SetFamily fam = RandomFamily(rng, n, members, density);
        ItemSet x;
        Result<std::vector<ItemSet>> all = AllWitnessSets(fam);
        Result<std::vector<ItemSet>> mins = MinimalWitnessSets(fam);
        Result<std::uint64_t> l_size = CountDecomposition(n, x, fam);
        Result<std::vector<Interval>> cover = DecompositionIntervalCover(n, x, fam);
        if (all.ok()) avg_wit += static_cast<double>(all->size()) / kTrials;
        if (mins.ok()) avg_min += static_cast<double>(mins->size()) / kTrials;
        if (l_size.ok()) avg_l += static_cast<double>(*l_size) / kTrials;
        if (cover.ok()) avg_iv += static_cast<double>(cover->size()) / kTrials;
      }
      std::printf("%8d %9.2f %12.1f %12.1f %14.1f %12.1f\n", members, density, avg_wit,
                  avg_min, avg_l, avg_iv);
    }
  }
  std::printf("(|L| out of 2^16 = 65536; intervals = compressed cover size)\n\n");
}

void BM_MinimalWitnessSets(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  Rng rng(members);
  SetFamily fam = RandomFamily(rng, 20, members, 0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinimalWitnessSets(fam));
  }
}
BENCHMARK(BM_MinimalWitnessSets)->Arg(2)->Arg(4)->Arg(8);

void BM_DecompositionMembership(benchmark::State& state) {
  const int n = 32;
  Rng rng(3);
  SetFamily fam = RandomFamily(rng, n, 8, 0.2);
  ItemSet x(rng.RandomMask(n, 0.1));
  ItemSet u(rng.RandomMask(n, 0.5) | x.bits());
  for (auto _ : state) {
    benchmark::DoNotOptimize(InDecomposition(n, x, fam, u));
  }
}
BENCHMARK(BM_DecompositionMembership);

void BM_EnumerateDecomposition(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n);
  SetFamily fam = RandomFamily(rng, n, 3, 0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EnumerateDecomposition(n, ItemSet(), fam));
  }
}
BENCHMARK(BM_EnumerateDecomposition)->Arg(12)->Arg(16)->Arg(20);

void BM_IntervalCover(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n + 5);
  SetFamily fam = RandomFamily(rng, n, 4, 0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecompositionIntervalCover(n, ItemSet(), fam));
  }
}
BENCHMARK(BM_IntervalCover)->Arg(16)->Arg(32)->Arg(64);

}  // namespace
}  // namespace diffc

int main(int argc, char** argv) {
  diffc::PrintWitnessTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
