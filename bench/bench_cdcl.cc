// Experiment E2b — solver ablation for the coNP decision procedure: the
// plain DPLL solver against the CDCL solver (clause learning, watched
// literals, restarts) on the instance families the implication checker
// produces — random DNF-tautology reductions and pigeonhole formulas.
// Both families are small enough here that the two solvers are
// comparable; pigeonhole in particular is exponential for *any*
// resolution-based solver, so clause learning cannot win asymptotically
// there and its bookkeeping shows up as overhead. The value of CDCL is
// interchangeability (same contract, agreement checked) plus headroom on
// instances with exploitable structure.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "prop/cdcl.h"
#include "prop/dpll.h"
#include "prop/tautology.h"

namespace diffc {
namespace {

using prop::CdclSolver;
using prop::Clause;
using prop::Cnf;
using prop::DpllSolver;

Cnf NegatedDnf(const prop::DnfFormula& f) {
  Cnf cnf;
  cnf.num_vars = f.num_vars;
  for (const prop::DnfConjunct& c : f.conjuncts) {
    Clause clause;
    ForEachBit(c.pos, [&](int b) { clause.push_back(-(b + 1)); });
    ForEachBit(c.neg, [&](int b) { clause.push_back(b + 1); });
    cnf.AddClause(std::move(clause));
  }
  return cnf;
}

Cnf Pigeonhole(int holes) {
  const int pigeons = holes + 1;
  Cnf cnf;
  cnf.num_vars = pigeons * holes;
  auto var = [&](int p, int h) { return p * holes + h + 1; };
  for (int p = 0; p < pigeons; ++p) {
    Clause clause;
    for (int h = 0; h < holes; ++h) clause.push_back(var(p, h));
    cnf.AddClause(std::move(clause));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        cnf.AddClause({-var(p1, h), -var(p2, h)});
      }
    }
  }
  return cnf;
}

void PrintSolverTable() {
  std::printf("=== E2b: DPLL vs CDCL on implication-checker instance families ===\n");
  std::printf("%-22s %12s %12s %10s\n", "instance", "dpll(ms)", "cdcl(ms)", "agree");
  // Random DNF reductions.
  for (int vars : {14, 18}) {
    double dpll_ms = 0, cdcl_ms = 0;
    bool agree = true;
    const int kTrials = 10;
    for (int t = 0; t < kTrials; ++t) {
      Cnf cnf = NegatedDnf(prop::RandomDnf(vars, vars * 4, 3, vars * 100 + t));
      auto t0 = std::chrono::steady_clock::now();
      Result<prop::SatResult> d = DpllSolver().Solve(cnf);
      auto t1 = std::chrono::steady_clock::now();
      Result<prop::SatResult> c = CdclSolver().Solve(cnf);
      auto t2 = std::chrono::steady_clock::now();
      dpll_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
      cdcl_ms += std::chrono::duration<double, std::milli>(t2 - t1).count();
      if (!d.ok() || !c.ok() || d->satisfiable != c->satisfiable) agree = false;
    }
    std::printf("random-dnf n=%-10d %12.3f %12.3f %10s\n", vars, dpll_ms / kTrials,
                cdcl_ms / kTrials, agree ? "yes" : "NO");
  }
  // Pigeonhole.
  for (int holes : {5, 6, 7}) {
    Cnf cnf = Pigeonhole(holes);
    auto t0 = std::chrono::steady_clock::now();
    Result<prop::SatResult> d = DpllSolver().Solve(cnf);
    auto t1 = std::chrono::steady_clock::now();
    Result<prop::SatResult> c = CdclSolver().Solve(cnf);
    auto t2 = std::chrono::steady_clock::now();
    bool agree = d.ok() && c.ok() && d->satisfiable == c->satisfiable;
    std::printf("pigeonhole PHP(%d,%d)%*s %12.3f %12.3f %10s\n", holes + 1, holes,
                holes >= 10 ? 0 : 2, "",
                std::chrono::duration<double, std::milli>(t1 - t0).count(),
                std::chrono::duration<double, std::milli>(t2 - t1).count(),
                agree ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_DpllPigeonhole(benchmark::State& state) {
  Cnf cnf = Pigeonhole(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DpllSolver().Solve(cnf)->satisfiable);
  }
}
BENCHMARK(BM_DpllPigeonhole)->Arg(4)->Arg(5)->Arg(6);

void BM_CdclPigeonhole(benchmark::State& state) {
  Cnf cnf = Pigeonhole(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CdclSolver().Solve(cnf)->satisfiable);
  }
}
BENCHMARK(BM_CdclPigeonhole)->Arg(4)->Arg(5)->Arg(6)->Arg(7);

void BM_DpllRandomDnf(benchmark::State& state) {
  Cnf cnf = NegatedDnf(prop::RandomDnf(static_cast<int>(state.range(0)),
                                       static_cast<int>(state.range(0)) * 4, 3, 9));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DpllSolver().Solve(cnf)->satisfiable);
  }
}
BENCHMARK(BM_DpllRandomDnf)->Arg(12)->Arg(16)->Arg(20);

void BM_CdclRandomDnf(benchmark::State& state) {
  Cnf cnf = NegatedDnf(prop::RandomDnf(static_cast<int>(state.range(0)),
                                       static_cast<int>(state.range(0)) * 4, 3, 9));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CdclSolver().Solve(cnf)->satisfiable);
  }
}
BENCHMARK(BM_CdclRandomDnf)->Arg(12)->Arg(16)->Arg(20);

}  // namespace
}  // namespace diffc

int main(int argc, char** argv) {
  diffc::PrintSolverTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
