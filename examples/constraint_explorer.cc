// constraint_explorer: a small CLI for playing with differential
// constraints.
//
//   constraint_explorer <n> "<constraints>" "<goal>"
//
//   n            universe size (attributes A, B, C, ...)
//   constraints  ';'-separated differential constraints, e.g.
//                "A -> {B}; B -> {CD}"
//   goal         a single constraint to test against the set
//
// Prints the lattice decompositions, the implication verdict from three
// deciders, a machine-checked proof when implied, and a counterexample
// (function + basket list) when not. Runs a built-in demo when invoked
// with no arguments.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "diffc.h"

using namespace diffc;

namespace {

int Explore(int n, const std::string& constraints_text, const std::string& goal_text) {
  Universe u = Universe::Letters(n);
  Result<ConstraintSet> premises = ParseConstraintSet(u, constraints_text);
  if (!premises.ok()) {
    std::fprintf(stderr, "error parsing constraints: %s\n",
                 premises.status().ToString().c_str());
    return 1;
  }
  Result<DifferentialConstraint> goal = ParseConstraint(u, goal_text);
  if (!goal.ok()) {
    std::fprintf(stderr, "error parsing goal: %s\n", goal.status().ToString().c_str());
    return 1;
  }

  std::printf("universe: %s\n", u.FormatSet(u.full_mask()).c_str());
  std::printf("premises: %s\n", ConstraintSetToString(*premises, u).c_str());
  std::printf("goal:     %s%s\n\n", goal->ToString(u).c_str(),
              goal->IsTrivial() ? "   (trivial)" : "");

  // Lattice decompositions (Definition 2.6).
  auto print_lattice = [&](const DifferentialConstraint& c) {
    Result<std::vector<ItemSet>> L = EnumerateDecomposition(n, c.lhs(), c.rhs());
    std::printf("  L(%s) = {", c.ToString(u).c_str());
    if (L.ok()) {
      for (std::size_t i = 0; i < L->size(); ++i) {
        std::printf("%s%s", i ? ", " : "", (*L)[i].ToString(u).c_str());
      }
    } else {
      std::printf("too large to enumerate");
    }
    std::printf("}\n");
  };
  for (const DifferentialConstraint& p : *premises) print_lattice(p);
  print_lattice(*goal);

  // Implication, three ways (Theorem 3.5 / Proposition 5.4 / Section 8).
  Result<ImplicationOutcome> sat = CheckImplicationSat(n, *premises, *goal);
  if (!sat.ok()) {
    std::fprintf(stderr, "SAT checker failed: %s\n", sat.status().ToString().c_str());
    return 1;
  }
  std::printf("\nSAT/coNP decision: %s\n", sat->implied ? "IMPLIED" : "NOT implied");
  if (Result<ImplicationOutcome> ex = CheckImplicationExhaustive(n, *premises, *goal);
      ex.ok()) {
    std::printf("exhaustive check:  %s\n", ex->implied ? "IMPLIED" : "NOT implied");
  }
  if (FdSubclassApplicable(*premises, *goal)) {
    std::printf("FD-subclass (P):   %s\n",
                CheckImplicationFd(n, *premises, *goal)->implied ? "IMPLIED"
                                                                 : "NOT implied");
  }

  if (sat->implied) {
    Result<Derivation> proof = DeriveImplied(n, *premises, *goal);
    if (proof.ok()) {
      Derivation pruned = PruneDerivation(*proof);
      Status valid = ValidateDerivation(n, *premises, pruned);
      std::printf("\nproof in the Figure 1 system (%d steps, %s):\n%s", pruned.size(),
                  valid.ok() ? "machine-validated" : valid.ToString().c_str(),
                  pruned.ToString(u).c_str());
    } else {
      std::printf("\nproof generation skipped: %s\n", proof.status().ToString().c_str());
    }
  } else {
    ItemSet cex = *sat->counterexample;
    std::printf("counterexample U = %s  (valid: %s)\n", cex.ToString(u).c_str(),
                IsValidCounterexample(n, *premises, *goal, cex) ? "yes" : "no");
    std::printf("witnesses: the function f_U(W)=[W ⊆ U] and the one-basket list "
                "(%s)\nboth satisfy every premise and violate the goal.\n",
                cex.ToString(u).c_str());
  }

  // Redundancy report.
  if (Result<std::vector<int>> redundant = RedundantConstraints(n, *premises);
      redundant.ok() && !redundant->empty()) {
    std::printf("\nredundant premises (implied by the rest):");
    for (int i : *redundant) std::printf(" #%d", i);
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) {
    std::printf("== demo: constraint_explorer 4 \"A -> {BC, CD}; C -> {D}\" "
                "\"AB -> {D}\" ==\n\n");
    int rc = Explore(4, "A -> {BC, CD}; C -> {D}", "AB -> {D}");
    if (rc != 0) return rc;
    std::printf("\n== demo: a non-implied goal ==\n\n");
    return Explore(4, "A -> {BC, CD}; C -> {D}", "D -> {A}");
  }
  if (argc != 4) {
    std::fprintf(stderr,
                 "usage: %s <n> \"<constraints>\" \"<goal>\"\n"
                 "   eg: %s 4 \"A -> {B}; B -> {CD}\" \"A -> {D}\"\n",
                 argv[0], argv[0]);
    return 2;
  }
  int n = std::atoi(argv[1]);
  if (n < 1 || n > 26) {
    std::fprintf(stderr, "n must be in 1..26\n");
    return 2;
  }
  return Explore(n, argv[2], argv[3]);
}
