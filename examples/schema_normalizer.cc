// Schema design with the polynomial FD subclass (paper Section 8):
// candidate keys, BCNF analysis and decomposition, 3NF synthesis — and
// the bridge back to differential constraints: each functional dependency
// is the single-member constraint whose implication the paper shows
// decidable in P.

#include <cstdio>

#include "diffc.h"

using namespace diffc;

namespace {

void PrintSchemas(const char* label, const std::vector<ItemSet>& schemas,
                  const Universe& u) {
  std::printf("%s:", label);
  for (const ItemSet& s : schemas) std::printf("  R(%s)", s.ToString(u).c_str());
  std::printf("\n");
}

}  // namespace

int main() {
  // The classic supplier schema: R(S, N, C, P, Q)
  //   S = supplier id, N = supplier name, C = city, P = part, Q = quantity
  //   S -> N, S -> C, SP -> Q
  Universe u = *Universe::Named({"S", "N", "C", "P", "Q"});
  ItemSet attrs{0, 1, 2, 3, 4};
  std::vector<Fd> fds{
      {ItemSet{0}, ItemSet{1}},
      {ItemSet{0}, ItemSet{2}},
      {ItemSet{0, 3}, ItemSet{4}},
  };
  std::printf("schema R(%s) with FDs:\n", attrs.ToString(u).c_str());
  for (const Fd& fd : fds) std::printf("  %s\n", fd.ToString(u).c_str());

  // Candidate keys.
  std::vector<ItemSet> keys = *CandidateKeys(attrs, fds);
  std::printf("\ncandidate keys:");
  for (const ItemSet& k : keys) std::printf("  %s", k.ToString(u).c_str());
  std::printf("\n");

  // BCNF analysis.
  Result<std::optional<BcnfViolation>> violation = FindBcnfViolation(attrs, fds);
  if (violation->has_value()) {
    std::printf("not in BCNF: %s -> %s with a non-superkey left side\n",
                (*violation)->lhs.ToString(u).c_str(),
                (*violation)->rhs.ToString(u).c_str());
  }
  std::vector<ItemSet> bcnf = *BcnfDecompose(attrs, fds);
  PrintSchemas("BCNF decomposition", bcnf, u);
  for (std::size_t i = 0; i + 1 < bcnf.size(); ++i) {
    std::printf("  lossless split of first two parts: %s\n",
                IsLosslessBinarySplit(bcnf[0], bcnf[1], fds) ? "yes" : "(n/a)");
    break;
  }

  // 3NF synthesis (dependency preserving).
  std::vector<ItemSet> third = *Synthesize3Nf(attrs, fds);
  PrintSchemas("3NF synthesis     ", third, u);

  // Back to differential constraints: FD implication is the paper's
  // polynomial subclass; the general SAT procedure must agree.
  std::printf("\nimplication in the FD subclass vs the general coNP decider:\n");
  ConstraintSet premises;
  for (const Fd& fd : fds) {
    premises.push_back(DifferentialConstraint(fd.lhs, SetFamily({fd.rhs})));
  }
  for (const char* text : {"SP -> {N}", "S -> {NC}", "P -> {Q}"}) {
    DifferentialConstraint goal = *ParseConstraint(u, text);
    bool via_closure = CheckImplicationFd(5, premises, goal)->implied;
    bool via_sat = CheckImplicationSat(5, premises, goal)->implied;
    std::printf("  {FDs} |= %-10s  closure: %-3s  SAT: %-3s\n", text,
                via_closure ? "yes" : "no", via_sat ? "yes" : "no");
  }

  // Minimal cover, for completeness.
  std::printf("\nminimal cover:\n");
  for (const Fd& fd : FdMinimalCover(fds)) {
    std::printf("  %s\n", fd.ToString(u).c_str());
  }
  return 0;
}
