// Dempster–Shafer evidence fusion with differential constraints — the
// third application domain named in the paper's conclusion. Two sensors
// report evidence about a fault location; Dempster's rule combines them,
// and differential constraints on the commonality function express
// domain knowledge of the form "any hypothesis set compatible with X also
// allows Y or Z" over focal elements.

#include <cstdio>

#include "diffc.h"

using namespace diffc;

namespace {

void Describe(const char* name, const MassFunction& m, const Universe& u) {
  std::printf("%s focal elements:\n", name);
  for (const ItemSet& focal : m.FocalElements()) {
    std::printf("  m(%s) = %s\n", focal.ToString(u).c_str(),
                m.mass(focal.bits()).ToString().c_str());
  }
  SetFunction<Rational> bel = m.Belief();
  SetFunction<Rational> pl = m.Plausibility();
  std::printf("  Bel({A}) = %s, Pl({A}) = %s;  bayesian: %s, consonant: %s\n\n",
              bel.at(ItemSet{0}).ToString().c_str(), pl.at(ItemSet{0}).ToString().c_str(),
              m.IsBayesian() ? "yes" : "no", m.IsConsonant() ? "yes" : "no");
}

}  // namespace

int main() {
  // Frame of discernment: fault in {A: pump, B: valve, C: controller}.
  Universe u = Universe::Letters(3);

  // Sensor 1: strong evidence for the pump, some for pump-or-valve.
  SetFunction<Rational> v1 = *SetFunction<Rational>::Make(3);
  v1.at(Mask{0b001}) = Rational(3, 5);  // {A}
  v1.at(Mask{0b011}) = Rational(1, 5);  // {A,B}
  v1.at(Mask{0b111}) = Rational(1, 5);  // ignorance
  MassFunction sensor1 = *MassFunction::Make(v1);

  // Sensor 2: points at valve-or-controller.
  SetFunction<Rational> v2 = *SetFunction<Rational>::Make(3);
  v2.at(Mask{0b110}) = Rational(1, 2);  // {B,C}
  v2.at(Mask{0b010}) = Rational(1, 4);  // {B}
  v2.at(Mask{0b111}) = Rational(1, 4);  // ignorance
  MassFunction sensor2 = *MassFunction::Make(v2);

  Describe("sensor 1", sensor1, u);
  Describe("sensor 2", sensor2, u);

  Rational conflict = *DempsterConflict(sensor1, sensor2);
  std::printf("conflict K = %s\n\n", conflict.ToString().c_str());

  MassFunction fused = *DempsterCombine(sensor1, sensor2);
  Describe("fused (Dempster's rule)", fused, u);

  // Differential constraints over the commonality function: the paper's
  // semantics says Q satisfies X -> Y iff every focal element containing
  // X contains some member of Y.
  std::printf("differential constraints on the fused commonality function:\n");
  for (const char* text : {"0 -> {A, B}", "C -> {B}", "A -> {B}", "0 -> {A, B, C}"}) {
    DifferentialConstraint c = *ParseConstraint(u, text);
    bool direct = fused.SatisfiesConstraint(c);
    bool via_density =
        SatisfiesWithDensity(Density(fused.Commonality()), c);
    std::printf("  %-16s %s  (density check agrees: %s)\n", text,
                direct ? "holds" : "fails", direct == via_density ? "yes" : "NO");
  }

  // The commonality function is a frequency function, so the paper's
  // implication machinery applies verbatim.
  std::printf("\nfused commonality is a frequency function: %s\n",
              IsFrequencyFunction(fused.Commonality()) ? "yes" : "no");
  return 0;
}
