// Relational constraints through Simpson functions (paper Section 7):
// a probabilistic relation, its Simpson function, positive boolean
// dependencies checked two equivalent ways (Proposition 7.3), and the
// polynomial FD subclass of the implication problem (Section 8).

#include <cstdio>

#include "diffc.h"

using namespace diffc;

int main() {
  // Schema (Emp, Dept, Floor, Phone): Emp -> Dept; every pair of tuples
  // agreeing on Dept agrees on Floor or Phone.
  Universe u = *Universe::Named({"E", "D", "F", "P"});
  Relation r = *Relation::Make(4, {
                                      {1, 10, 3, 100},
                                      {2, 10, 3, 200},
                                      {3, 20, 4, 300},
                                      {4, 20, 5, 300},
                                      {5, 30, 5, 400},
                                  });
  Distribution p = *Distribution::Uniform(r.size());

  SetFunction<Rational> simpson = *SimpsonFunction(r, p);
  std::printf("Simpson function (uniform p):\n");
  std::printf("  simpson(0)    = %s\n", simpson.at(ItemSet()).ToString().c_str());
  std::printf("  simpson(D)    = %s\n", simpson.at(ItemSet{1}).ToString().c_str());
  std::printf("  simpson(EDFP) = %s\n",
              simpson.at(ItemSet{0, 1, 2, 3}).ToString().c_str());
  std::printf("density is nonnegative (Prop. 7.2) -> frequency function: %s\n\n",
              IsFrequencyFunction(simpson) ? "yes" : "no");

  // Positive boolean dependencies vs differential constraints over the
  // Simpson function (Proposition 7.3): both answers must agree.
  SetFunction<Rational> density = Density(simpson);
  for (const char* text : {"E -> {D}", "D -> {E}", "D -> {F, P}", "D -> {F}"}) {
    DifferentialConstraint c = *ParseConstraint(u, text);
    bool via_relation = SatisfiesBooleanDependency(r, c);
    bool via_simpson = SatisfiesWithDensity(density, c);
    std::printf("  %-12s  boolean-dep: %-3s  simpson-sat: %-3s  (agree: %s)\n", text,
                via_relation ? "yes" : "no", via_simpson ? "yes" : "no",
                via_relation == via_simpson ? "ok" : "MISMATCH");
  }

  // The FD subclass: single-member right-hand sides decide in polynomial
  // time via attribute closure, matching the general coNP procedure.
  std::printf("\nFD subclass implication (Section 8):\n");
  ConstraintSet fds = *ParseConstraintSet(u, "E -> {D}; D -> {F}");
  for (const char* text : {"E -> {F}", "F -> {E}"}) {
    DifferentialConstraint goal = *ParseConstraint(u, text);
    Result<ImplicationOutcome> fd = CheckImplicationFd(4, fds, goal);
    Result<ImplicationOutcome> sat = CheckImplicationSat(4, fds, goal);
    std::printf("  {E->D, D->F} |= %-9s  closure: %-3s  SAT: %-3s\n", text,
                fd->implied ? "yes" : "no", sat->implied ? "yes" : "no");
  }

  // Minimal covers for classic FDs.
  std::vector<Fd> messy{{ItemSet{0}, ItemSet{1, 2}},
                        {ItemSet{0, 1}, ItemSet{2}},
                        {ItemSet{1}, ItemSet{1}}};
  std::vector<Fd> cover = FdMinimalCover(messy);
  std::printf("\nminimal cover of {E->DF, ED->F, D->D}:\n");
  for (const Fd& fd : cover) std::printf("  %s\n", fd.ToString(u).c_str());
  return 0;
}
