// Quickstart: the core objects of "Differential Constraints" (PODS 2005)
// in one tour — constraints, lattice decompositions, satisfaction,
// implication, machine-generated proofs, and counterexamples.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build --target quickstart
//               ./build/examples/quickstart

#include <cstdio>

#include "diffc.h"

using namespace diffc;

int main() {
  // The universe S = {A, B, C, D} and the paper's running constraint
  // A -> {BC, CD}: "a basket containing A contains BC or CD".
  const int n = 4;
  Universe u = Universe::Letters(n);
  DifferentialConstraint c = *ParseConstraint(u, "A -> {BC, CD}");
  std::printf("constraint:      %s\n", c.ToString(u).c_str());

  // Its witness sets (Definition 2.5) and lattice decomposition
  // (Definition 2.6 / Example 2.7).
  std::printf("witness sets:    ");
  Result<std::vector<ItemSet>> witnesses = AllWitnessSets(c.rhs());
  if (!witnesses.ok()) {
    std::printf("error: %s\n", witnesses.status().ToString().c_str());
    return 1;
  }
  for (const ItemSet& w : *witnesses) {
    std::printf("%s ", w.ToString(u).c_str());
  }
  std::printf("\nL(A, {BC,CD}):   ");
  Result<std::vector<ItemSet>> lattice = EnumerateDecomposition(n, c.lhs(), c.rhs());
  if (!lattice.ok()) {
    std::printf("error: %s\n", lattice.status().ToString().c_str());
    return 1;
  }
  for (const ItemSet& x : *lattice) {
    std::printf("%s ", x.ToString(u).c_str());
  }
  std::printf("\n\n");

  // A support function from a tiny basket list, its density (Möbius
  // inverse), and satisfaction (Definition 3.1).
  BasketList baskets = *BasketList::Make(n, {0b0111, 0b0111, 0b1101, 0b0100});
  SetFunction<std::int64_t> support = *SupportFunction(baskets);
  SetFunction<std::int64_t> density = Density(support);
  std::printf("support s(A)=%lld  s(ABC)=%lld;  density d(ABC)=%lld\n",
              static_cast<long long>(support.at(ItemSet{0})),
              static_cast<long long>(support.at(ItemSet{0, 1, 2})),
              static_cast<long long>(density.at(ItemSet{0, 1, 2})));
  std::printf("baskets satisfy %s?  %s\n\n", c.ToString(u).c_str(),
              Satisfies(support, c) ? "yes" : "no");

  // Implication (Theorem 3.5) decided three ways, plus a machine proof in
  // the Figure 1 inference system (Theorem 4.8) — Example 4.3.
  ConstraintSet premises = *ParseConstraintSet(u, "A -> {BC, CD}; C -> {D}");
  DifferentialConstraint goal = *ParseConstraint(u, "AB -> {D}");
  std::printf("premises:        %s\n", ConstraintSetToString(premises, u).c_str());
  std::printf("goal:            %s\n", goal.ToString(u).c_str());
  std::printf("implied (exhaustive lattice check):  %s\n",
              CheckImplicationExhaustive(n, premises, goal)->implied ? "yes" : "no");
  std::printf("implied (SAT/coNP procedure):        %s\n",
              CheckImplicationSat(n, premises, goal)->implied ? "yes" : "no");

  Result<Derivation> proof = DeriveImplied(n, premises, goal);
  std::printf("\nmachine-generated proof (%d steps, validated: %s):\n%s\n",
              proof->size(),
              ValidateDerivation(n, premises, *proof).ok() ? "yes" : "no",
              proof->ToString(u).c_str());

  // A non-implied goal comes with a counterexample U: the function f_U and
  // the one-basket list (U) satisfy the premises and violate the goal.
  DifferentialConstraint bad = *ParseConstraint(u, "D -> {A}");
  Result<ImplicationOutcome> outcome = CheckImplicationSat(n, premises, bad);
  std::printf("goal %s implied? %s;  counterexample U = %s\n",
              bad.ToString(u).c_str(), outcome->implied ? "yes" : "no",
              outcome->counterexample->ToString(u).c_str());
  SetFunction<std::int64_t> f_u = *CounterexampleFunction(n, *outcome->counterexample);
  std::printf("f_U satisfies premises: %s;  f_U satisfies goal: %s\n",
              (Satisfies(f_u, premises[0]) && Satisfies(f_u, premises[1])) ? "yes" : "no",
              Satisfies(f_u, bad) ? "yes" : "no");
  return 0;
}
