// Reasoning about unknown supports: what do partial counts plus
// differential constraints entail about an uncounted itemset?
// (The integration of frequency constraints with differential
// constraints proposed in the paper's conclusion.)
//
// A store counted a few itemsets and knows, from its recommender rules,
// that every coffee basket contains milk or cream. The exact rational LP
// over the density polytope answers: how many coffee+milk+cream baskets
// can there be?

#include <cstdio>

#include "diffc.h"

using namespace diffc;

namespace {

void PrintInterval(const char* label, const SupportInterval& iv) {
  std::printf("%-34s [%s, %s]\n", label, iv.lo.ToString().c_str(),
              iv.hi ? iv.hi->ToString().c_str() : "inf");
}

}  // namespace

int main() {
  // Items: 0=coffee, 1=milk, 2=cream, 3=sugar.
  Universe u = *Universe::Named({"coffee", "milk", "cream", "sugar"});
  const int n = 4;

  // Known counts from a partial scan of 100 baskets.
  std::vector<FrequencyConstraint> counts{
      {ItemSet(), 100, 100},       // 100 baskets.
      {ItemSet{0}, 60, 60},        // coffee: 60.
      {ItemSet{1}, 50, 50},        // milk: 50.
      {ItemSet{2}, 30, 30},        // cream: 30.
      {ItemSet{0, 1}, 35, 35},     // coffee+milk: 35.
  };
  std::printf("known: |B|=100, s(coffee)=60, s(milk)=50, s(cream)=30, "
              "s(coffee,milk)=35\n\n");

  ItemSet target{0, 1, 2};  // coffee+milk+cream.

  // Entailed interval from the counts alone.
  SupportInterval plain = *ImpliedSupportInterval(n, counts, {}, target);
  PrintInterval("s(coffee,milk,cream), counts only:", plain);

  // Add the disjunctive business rule: coffee -> milk or cream.
  ConstraintSet rules;
  rules.push_back(DifferentialConstraint(ItemSet{0}, SetFamily({ItemSet{1}, ItemSet{2}})));
  SupportInterval with_rule = *ImpliedSupportInterval(n, counts, rules, target);
  PrintInterval("  + rule coffee -> {milk, cream}:", with_rule);

  // The rule also pins s(coffee,cream) harder:
  SupportInterval cc_plain = *ImpliedSupportInterval(n, counts, {}, ItemSet{0, 2});
  SupportInterval cc_rule = *ImpliedSupportInterval(n, counts, rules, ItemSet{0, 2});
  PrintInterval("s(coffee,cream), counts only:", cc_plain);
  PrintInterval("  + rule coffee -> {milk, cream}:", cc_rule);

  // Consistency check with a witness basket list.
  FrequencyConsistency consistency = *CheckFrequencyConsistency(n, counts, rules);
  std::printf("\nconstraints consistent: %s", consistency.consistent ? "yes" : "no");
  if (consistency.witness.has_value()) {
    std::printf("  (witness basket list with %d baskets constructed and verified)",
                consistency.witness->size());
    // The witness must satisfy the differential rule.
    bool rule_holds = SatisfiesDisjunctive(*consistency.witness, rules[0]);
    std::printf("\nwitness satisfies coffee -> {milk, cream}: %s",
                rule_holds ? "yes" : "NO");
  }
  std::printf("\n");

  // An inconsistent scenario is detected exactly.
  std::vector<FrequencyConstraint> bad = counts;
  bad.push_back({ItemSet{0, 1, 2}, 50, std::nullopt});  // > s(cream) = 30.
  FrequencyConsistency broken = *CheckFrequencyConsistency(n, bad, rules);
  std::printf("\nadding s(coffee,milk,cream) >= 50 stays consistent: %s\n",
              broken.consistent ? "yes" : "no");
  return 0;
}
