// Market-basket analysis with differential constraints (paper Section 6):
// mine frequent itemsets with Apriori, discover disjunctive rules, and
// build the Bykowski–Rigotti concise representation FDFree ∪ Bd⁻, showing
// how many support counts the rules save and that every support is still
// derivable.
//
// Usage: market_basket [seed]

#include <cstdio>
#include <cstdlib>

#include "diffc.h"

using namespace diffc;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  // A synthetic store: 12 products, 2000 baskets, three co-purchase
  // patterns, plus two planted disjunctive rules — "coffee buyers take milk
  // or cream" and "pasta buyers take sauce".
  BasketGenConfig config;
  config.num_items = 12;
  config.num_baskets = 2000;
  config.num_patterns = 3;
  config.pattern_size = 4;
  config.pattern_prob = 0.35;
  config.noise_density = 0.12;
  config.seed = seed;
  std::vector<PlantedRule> rules{
      {/*coffee=*/0, /*milk,cream=*/ItemSet{1, 2}},
      {/*pasta=*/3, /*sauce=*/ItemSet{4}},
  };
  BasketList baskets = *GenerateBasketsWithRules(config, rules);
  std::printf("generated %d baskets over %d items (seed %llu)\n\n", baskets.size(),
              baskets.num_items(), static_cast<unsigned long long>(seed));

  const std::int64_t kappa = baskets.size() / 20;  // 5%% support threshold.
  std::printf("support threshold kappa = %lld\n\n", static_cast<long long>(kappa));

  // 1. Classic Apriori with negative border.
  AprioriResult apriori = *Apriori(baskets, kappa);
  std::printf("[apriori]  frequent itemsets: %zu   negative border: %zu   "
              "supports counted: %llu\n",
              apriori.frequent.size(), apriori.negative_border.size(),
              static_cast<unsigned long long>(apriori.candidates_counted));

  // 2. The concise representation: frequent disjunctive-free sets + border.
  ConciseRepresentation rep =
      *ConciseRepresentation::Build(baskets, {.min_support = kappa, .rule_arity = 2});
  std::printf("[concise]  FDFree: %zu   border Bd-: %zu   rules found: %zu   "
              "supports counted: %llu\n\n",
              rep.fdfree().size(), rep.border().size(), rep.rules().size(),
              static_cast<unsigned long long>(rep.candidates_counted()));

  // 3. Show a few discovered rules, as differential constraints.
  Universe u = Universe::Letters(baskets.num_items());
  std::printf("sample discovered disjunctive rules (as differential constraints):\n");
  std::size_t shown = 0;
  for (const SingletonDisjunctiveRule& rule : rep.rules()) {
    if (shown++ >= 5) break;
    DifferentialConstraint c(ItemSet(rule.lhs),
                             SetFamily::Singletons(ItemSet(rule.rhs_items)));
    std::printf("  %-24s holds: %s\n", c.ToString(u).c_str(),
                SatisfiesDisjunctive(baskets, c) ? "yes" : "no");
  }

  // 4. Reconstruct supports of all frequent itemsets from the
  // representation alone and verify them against the data.
  std::size_t checked = 0, exact = 0;
  for (const CountedItemset& s : apriori.frequent) {
    DerivedSupport d = rep.Derive(ItemSet(s.items));
    ++checked;
    if (d.support.has_value() && *d.support == s.support && d.frequent) ++exact;
  }
  std::printf("\nreconstruction: %zu/%zu frequent supports derived exactly from "
              "FDFree + Bd- + rules (no basket access)\n",
              exact, checked);

  double savings = apriori.frequent.size() + apriori.negative_border.size() == 0
                       ? 0.0
                       : 100.0 * (1.0 - static_cast<double>(rep.size()) /
                                            (apriori.frequent.size() +
                                             apriori.negative_border.size()));
  std::printf("representation size: %zu vs %zu (%.1f%% smaller)\n", rep.size(),
              apriori.frequent.size() + apriori.negative_border.size(), savings);
  return 0;
}
