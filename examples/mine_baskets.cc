// End-to-end mining pipeline over a basket file:
//
//   mine_baskets <file.baskets> <min_support> [min_confidence]
//
// Loads the transactions (see fis/io.h for the format; data/sample.baskets
// ships with the repository), mines frequent itemsets (Apriori), builds
// all three concise representations (negative border, Bykowski–Rigotti
// disjunctive-free, Calders–Goethals non-derivable), generates
// association rules, and cross-checks that the representations reproduce
// the mined supports. With no arguments, runs on generated data.

#include <cstdio>
#include <cstdlib>

#include "diffc.h"

using namespace diffc;

namespace {

int Mine(const BasketList& baskets, std::int64_t min_support, double min_confidence) {
  std::printf("baskets: %d over %d items; min support %lld, min confidence %.2f\n\n",
              baskets.size(), baskets.num_items(), static_cast<long long>(min_support),
              min_confidence);

  AprioriResult apriori = *Apriori(baskets, min_support);
  std::printf("frequent itemsets: %zu  (negative border %zu, %llu supports counted)\n",
              apriori.frequent.size(), apriori.negative_border.size(),
              static_cast<unsigned long long>(apriori.candidates_counted));

  ConciseRepresentation fdfree =
      *ConciseRepresentation::Build(baskets, {.min_support = min_support, .rule_arity = 2});
  std::printf("disjunctive-free rep: %zu sets, %zu rules (%llu counted)\n", fdfree.size(),
              fdfree.rules().size(),
              static_cast<unsigned long long>(fdfree.candidates_counted()));

  NdiRepresentation ndi = *NdiRepresentation::Build(baskets, min_support);
  std::printf("non-derivable rep:    %zu sets (%llu counted)\n\n", ndi.size(),
              static_cast<unsigned long long>(ndi.candidates_counted()));

  // Verify both representations against the mined supports.
  std::size_t fdfree_ok = 0, ndi_ok = 0;
  for (const CountedItemset& s : apriori.frequent) {
    DerivedSupport a = fdfree.Derive(ItemSet(s.items));
    if (a.frequent && a.support == s.support) ++fdfree_ok;
    DerivedSupport b = ndi.Derive(ItemSet(s.items));
    if (b.frequent && b.support == s.support) ++ndi_ok;
  }
  std::printf("reconstruction check: disjunctive-free %zu/%zu, NDI %zu/%zu\n\n",
              fdfree_ok, apriori.frequent.size(), ndi_ok, apriori.frequent.size());

  Universe u = Universe::Letters(baskets.num_items());
  Result<std::vector<AssociationRule>> rules =
      GenerateAssociationRules(apriori, min_confidence);
  if (rules.ok()) {
    std::printf("association rules (confidence >= %.2f): %zu;  strongest:\n",
                min_confidence, rules->size());
    // Show up to five highest-confidence rules.
    std::vector<AssociationRule> sorted = *rules;
    std::sort(sorted.begin(), sorted.end(),
              [](const AssociationRule& a, const AssociationRule& b) {
                if (a.confidence != b.confidence) return a.confidence > b.confidence;
                return a.support > b.support;
              });
    for (std::size_t i = 0; i < sorted.size() && i < 5; ++i) {
      std::printf("  %s\n", sorted[i].ToString(u).c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) {
    std::printf("== no file given: mining generated data ==\n\n");
    BasketGenConfig config;
    config.num_items = 12;
    config.num_baskets = 1500;
    config.seed = 11;
    BasketList b = *GenerateBasketsWithRules(config, {{0, ItemSet{1, 2}}});
    return Mine(b, b.size() / 20, 0.8);
  }
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <file.baskets> <min_support> [min_confidence]\n",
                 argv[0]);
    return 2;
  }
  Result<BasketList> baskets = LoadBaskets(argv[1]);
  if (!baskets.ok()) {
    std::fprintf(stderr, "error: %s\n", baskets.status().ToString().c_str());
    return 1;
  }
  const std::int64_t min_support = std::strtoll(argv[2], nullptr, 10);
  const double min_confidence = argc > 3 ? std::strtod(argv[3], nullptr) : 0.8;
  return Mine(*baskets, min_support, min_confidence);
}
