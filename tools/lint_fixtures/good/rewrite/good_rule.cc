// rewrite-catalog accepted pattern: the registered name is backticked in
// the good tree's DESIGN.md rewrite-rule catalog and quoted in its
// tests/test_rewrite.cc.
DIFFC_REGISTER_REWRITE_RULE("fixture-good-rule", FixtureGoodRule)
