// Companion rule-tester stub for rewrite/good_rule.cc: every registered
// rewrite rule must be exercised here by name.
const char* kFixtureTestedRule = "fixture-good-rule";
