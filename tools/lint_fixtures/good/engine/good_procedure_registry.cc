// procedure-registry accepted pattern: every enumerator except kNone has
// both a name-table case and a registration site.
enum class DecisionProcedure {
  kNone = 0,
  kFoo,
};

const char* DecisionProcedureName(DecisionProcedure p) {
  switch (p) {
    case DecisionProcedure::kNone:
      return "none";
    case DecisionProcedure::kFoo:
      return "foo";
  }
  return "?";
}

DIFFC_REGISTER_PROCEDURE(kFoo, FooProcedure)
