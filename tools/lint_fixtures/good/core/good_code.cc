// Fixture: the patterns the linter should accept.
#include "util/failpoint.h"
#include "util/mutex.h"
#include "util/status.h"

diffc::Status DoThing();

bool Guarded() { return DIFFC_FAILPOINT("fixture/good-site"); }

void ExplainedDiscard() {
  // The fixture result cannot fail: DoThing is a stub.
  (void)DoThing();
}
