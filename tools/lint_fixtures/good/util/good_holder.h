#ifndef DIFFC_UTIL_GOOD_HOLDER_H_
#define DIFFC_UTIL_GOOD_HOLDER_H_

#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

// Fixture: a correctly annotated holder — Mutex member with GUARDED_BY
// siblings, MutexLock critical sections.
class GoodHolder {
 public:
  void Add(int v) EXCLUDES(mu_) {
    diffc::MutexLock lock(&mu_);
    items_.push_back(v);
  }

 private:
  mutable diffc::Mutex mu_;
  std::vector<int> items_ GUARDED_BY(mu_);
};

#endif  // DIFFC_UTIL_GOOD_HOLDER_H_
