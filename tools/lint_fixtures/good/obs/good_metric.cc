// Fixture: well-formed registrations — one site per (name, labels).
#include "obs/metrics.h"

void RegisterGoodMetrics() {
  diffc::obs::Registry& r = diffc::obs::Registry::Global();
  r.GetCounter("diffc_fixture_ops_total", "Ops.");
  r.GetCounter("diffc_fixture_verdicts_total", "Verdicts.", {{"verdict", "implied"}});
  r.GetCounter("diffc_fixture_verdicts_total", "Verdicts.", {{"verdict", "refuted"}});
  r.GetGauge("diffc_fixture_queue_depth", "Depth.");
  r.GetHistogram("diffc_fixture_latency_seconds", "Latency.", {0.1, 1.0});
}
