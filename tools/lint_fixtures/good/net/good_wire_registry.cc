// wire-registry accepted pattern: every WireRequest enumerator has both a
// name-table case and a DIFFC_REGISTER_WIRE_HANDLER site.
enum class WireRequest : unsigned char {
  kPing = 0x01,
  kRelease = 0x02,
};

const char* WireRequestName(WireRequest t) {
  switch (t) {
    case WireRequest::kPing:
      return "ping";
    case WireRequest::kRelease:
      return "release";
  }
  return "?";
}

DIFFC_REGISTER_WIRE_HANDLER(kPing, PingHandler)
DIFFC_REGISTER_WIRE_HANDLER(kRelease, ReleaseHandler)
