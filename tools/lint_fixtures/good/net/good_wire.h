// wire-doc accepted pattern: every opcode hex literal and every *Msg field
// declared in a wire header is backticked in the tree's DESIGN.md wire table.
#ifndef DIFFC_NET_GOOD_WIRE_H_
#define DIFFC_NET_GOOD_WIRE_H_

enum class WireResponse : unsigned char {
  kPong = 0x11,
};

struct PongMsg {
  unsigned long nonce = 0;
};

#endif  // DIFFC_NET_GOOD_WIRE_H_
