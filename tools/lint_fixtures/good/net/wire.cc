// decoder-discipline: the accepted pattern — every raw byte read on the
// decode path goes through the bounds-checked ByteCursor (net/cursor.h);
// textual slicing via std::string find/substr stays legal.
#include <cstdint>
#include <string>

namespace diffc::net {

class ByteCursor;  // net/cursor.h in the real tree.
bool TryU32(ByteCursor& cur, std::uint32_t* out);

bool DecodeLen(ByteCursor& cur, std::uint32_t* len) {
  return TryU32(cur, len);
}

std::string RequestLine(const std::string& head) {
  const std::size_t line_end = head.find("\r\n");
  if (line_end == std::string::npos) return "";
  return head.substr(0, line_end);
}

}  // namespace diffc::net
