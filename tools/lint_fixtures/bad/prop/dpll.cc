// Fixture: solver-atomic — no metric mutations inside solver inner loops.
#include "obs/metrics.h"

void Solve(int budget) {
  static diffc::obs::Counter* decisions =
      diffc::obs::Registry::Global().GetCounter("diffc_dpll_fixture_total", "d");
  while (budget-- > 0) {
    decisions->Inc();
  }
}
