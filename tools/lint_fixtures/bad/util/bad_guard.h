#ifndef WRONG_GUARD_H_
#define WRONG_GUARD_H_

// Fixture: include-guard — should be DIFFC_UTIL_BAD_GUARD_H_.

#endif  // WRONG_GUARD_H_
