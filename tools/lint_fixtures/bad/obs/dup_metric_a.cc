// Fixture: metric-dup — first of two sites registering the same name.
#include "obs/metrics.h"

void RegisterDupA() {
  diffc::obs::Registry::Global().GetCounter("diffc_dup_ops_total", "Ops.");
}
