// Fixture: metric-dup — second site registering the same (name, labels).
#include "obs/metrics.h"

void RegisterDupB() {
  diffc::obs::Registry::Global().GetCounter("diffc_dup_ops_total", "Ops again.");
}
