// Fixture: metric-name — a counter must end in `_total`.
#include "obs/metrics.h"

void RegisterBadMetric() {
  diffc::obs::Registry::Global().GetCounter("diffc_cache_hits", "Cache hits.");
}
