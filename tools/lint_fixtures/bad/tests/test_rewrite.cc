// Companion rule-tester stub for rewrite/uncataloged_rule.cc. It quotes
// only the first fixture rule name, so the catalog half of rewrite-catalog
// fires for that one; the second name (cataloged in DESIGN.md but
// deliberately absent here) trips the test-coverage half instead.
const char* kFixtureTestedRule = "fixture-uncataloged";
