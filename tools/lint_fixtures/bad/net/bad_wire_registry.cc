// wire-registry: kPoke is declared but has neither a name-table case nor a
// DIFFC_REGISTER_WIRE_HANDLER site — an advertised but undispatchable frame.
enum class WireRequest : unsigned char {
  kPing = 0x01,
  kPoke = 0x02,
};

const char* WireRequestName(WireRequest t) {
  switch (t) {
    case WireRequest::kPing:
      return "ping";
  }
  return "?";
}

DIFFC_REGISTER_WIRE_HANDLER(kPing, PingHandler)
