// wire-doc: WireResponse::kGone (0x77) and GoneMsg's retry_hint_ms appear in
// no DESIGN.md wire table — an on-the-wire contract nobody can read about.
// Uses WireResponse (not WireRequest) so the wire-registry rule stays quiet:
// this fixture isolates wire-doc.
#ifndef DIFFC_NET_BAD_WIRE_H_
#define DIFFC_NET_BAD_WIRE_H_

enum class WireResponse : unsigned char {
  kGone = 0x77,
};

struct GoneMsg {
  unsigned int retry_hint_ms = 0;
};

#endif  // DIFFC_NET_BAD_WIRE_H_
