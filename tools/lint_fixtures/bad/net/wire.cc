// decoder-discipline: raw byte reads on the decode path. Untrusted bytes
// must flow through the ByteCursor API (net/cursor.h), never through
// memcpy, type puns, or pointer walks the linter cannot bounds-audit.
#include <cstdint>
#include <cstring>

namespace diffc::net {

std::uint32_t DecodeLen(const std::uint8_t* data) {
  std::uint32_t len = 0;
  std::memcpy(&len, data, sizeof(len));
  return len;
}

const char* DecodeName(const std::uint8_t* data) {
  return reinterpret_cast<const char*>(data);
}

std::uint8_t DecodeTag(const std::uint8_t* p) {
  return *p++;
}

}  // namespace diffc::net
