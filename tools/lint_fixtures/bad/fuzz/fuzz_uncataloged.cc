// fuzzer-catalog: a fuzz target whose name is missing from the DESIGN.md
// fuzzing catalog. The harness body is irrelevant — the rule audits the
// fuzz/fuzz_*.cc file list against the docs.
extern "C" int LLVMFuzzerTestOneInput(const unsigned char*, unsigned long) {
  return 0;
}
