// Fixture: failpoint-name — names are <area>/<site>, lowercase.
#include "util/failpoint.h"
#include "util/status.h"

diffc::Status MaybeFail() {
  if (DIFFC_FAILPOINT("BadName")) {
    return diffc::Status::Internal("failpoint");
  }
  return diffc::Status::Ok();
}
