// Fixture: failpoint-dup — a fail-point name must have exactly one site.
#include "util/failpoint.h"

bool SiteOne() { return DIFFC_FAILPOINT("cache/insert"); }
bool SiteTwo() { return DIFFC_FAILPOINT("cache/insert"); }
