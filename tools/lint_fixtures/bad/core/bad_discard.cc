// Fixture: void-discard — a discard must say why the value cannot matter.
#include "util/status.h"

diffc::Status DoThing();

void CallIt() {
  (void)DoThing();
}
