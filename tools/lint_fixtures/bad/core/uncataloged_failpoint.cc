// Fixture: failpoint-catalog — a well-formed site name that the companion
// DESIGN.md catalog does not list (it lists only `cache/insert`).
#include "util/failpoint.h"

bool Uncataloged() { return DIFFC_FAILPOINT("core/uncataloged-site"); }
