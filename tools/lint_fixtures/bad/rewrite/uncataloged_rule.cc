// rewrite-catalog: both halves of the rule. "fixture-uncataloged" is
// missing from the bad tree's DESIGN.md rewrite-rule catalog;
// "fixture-untested" is cataloged there but never quoted in the bad
// tree's tests/test_rewrite.cc companion.
DIFFC_REGISTER_REWRITE_RULE("fixture-uncataloged", FixtureUncatalogedRule)
DIFFC_REGISTER_REWRITE_RULE("fixture-untested", FixtureUntestedRule)
