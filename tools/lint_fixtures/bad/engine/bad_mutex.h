#ifndef DIFFC_ENGINE_BAD_MUTEX_H_
#define DIFFC_ENGINE_BAD_MUTEX_H_

#include <mutex>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

// Fixture: mutex-guarded-by, both variants.

// A raw std::mutex member is invisible to the analysis.
class RawMutexHolder {
 private:
  std::mutex mu_;
  std::vector<int> items_;
};

// An annotated Mutex that guards nothing proves nothing.
class UnguardedMutexHolder {
 private:
  diffc::Mutex mu_;
  std::vector<int> items_;
};

#endif  // DIFFC_ENGINE_BAD_MUTEX_H_
