// Fixture: naked-lock — std::lock_guard is invisible to the analysis.
#include <mutex>

static std::mutex g_mu;

void Touch() {
  std::lock_guard<std::mutex> lock(g_mu);
}
