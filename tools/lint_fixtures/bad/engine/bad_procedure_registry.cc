// procedure-registry: kBar is declared but has neither a name-table case
// nor a DIFFC_REGISTER_PROCEDURE site — an unrunnable, unprintable value.
enum class DecisionProcedure {
  kNone = 0,
  kFoo,
  kBar,
};

const char* DecisionProcedureName(DecisionProcedure p) {
  switch (p) {
    case DecisionProcedure::kNone:
      return "none";
    case DecisionProcedure::kFoo:
      return "foo";
  }
  return "?";
}

DIFFC_REGISTER_PROCEDURE(kFoo, FooProcedure)
