// diffc_client — command-line client for a running diffcd.
//
//   diffc_client --server=127.0.0.1:7411 ping
//   diffc_client --server=unix:/tmp/diffcd.sock check --n=4 \
//       --premises="A -> {B}; B -> {C}" --goals="A -> {C}; C -> {A}" \
//       [--deadline-ms=500]
//
// `check` registers the premises, runs one CHECK_BATCH over the goals,
// prints one verdict per goal, releases the handle, and exits 0 when the
// batch ran (regardless of verdicts), 1 on any transport/server error.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/parser.h"
#include "lattice/universe.h"
#include "net/client.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --server=ADDR ping [--nonce=N]\n"
               "       %s --server=ADDR check --n=K\n"
               "           --premises=TEXT | --premises-file=PATH\n"
               "           --goals=TEXT    | --goals-file=PATH\n"
               "           [--deadline-ms=N]\n"
               "resilience (both commands):\n"
               "           [--retries=N] [--retry-initial-ms=N] [--retry-budget-ms=N]\n"
               "           [--connect-timeout-ms=N] [--no-reconnect]\n"
               "tracing (both commands):\n"
               "           [--trace]   force-sample the request end to end and print\n"
               "                       the trace id (look it up in diffcd's /tracez)\n",
               argv0, argv0);
}

bool ParseFlag(const std::string& arg, const std::string& name, std::string* out) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

bool ReadFileInto(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

const char* VerdictName(std::uint8_t verdict) {
  switch (verdict) {
    case 0:
      return "not-implied";
    case 1:
      return "implied";
    case 2:
      return "unknown";
    default:
      return "invalid";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string server_address;
  std::string command;
  std::string premises_text;
  std::string goals_text;
  long n = -1;
  long deadline_ms = 0;
  std::uint64_t nonce = 42;
  diffc::net::ClientOptions client_options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string text;
    if (ParseFlag(arg, "server", &server_address)) {
    } else if (ParseFlag(arg, "premises", &premises_text)) {
    } else if (ParseFlag(arg, "goals", &goals_text)) {
    } else if (ParseFlag(arg, "premises-file", &text)) {
      if (!ReadFileInto(text, &premises_text)) {
        std::fprintf(stderr, "diffc_client: cannot read %s\n", text.c_str());
        return 1;
      }
    } else if (ParseFlag(arg, "goals-file", &text)) {
      if (!ReadFileInto(text, &goals_text)) {
        std::fprintf(stderr, "diffc_client: cannot read %s\n", text.c_str());
        return 1;
      }
    } else if (ParseFlag(arg, "n", &text)) {
      n = std::strtol(text.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "deadline-ms", &text)) {
      deadline_ms = std::strtol(text.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "nonce", &text)) {
      nonce = std::strtoull(text.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "retries", &text)) {
      client_options.retry.max_attempts = static_cast<int>(std::strtol(text.c_str(), nullptr, 10));
    } else if (ParseFlag(arg, "retry-initial-ms", &text)) {
      client_options.retry.initial_backoff =
          std::chrono::milliseconds(std::strtol(text.c_str(), nullptr, 10));
    } else if (ParseFlag(arg, "retry-budget-ms", &text)) {
      client_options.retry.retry_budget =
          std::chrono::milliseconds(std::strtol(text.c_str(), nullptr, 10));
    } else if (ParseFlag(arg, "connect-timeout-ms", &text)) {
      client_options.connect_timeout =
          std::chrono::milliseconds(std::strtol(text.c_str(), nullptr, 10));
    } else if (arg == "--no-reconnect") {
      client_options.reconnect = false;
    } else if (arg == "--trace") {
      client_options.trace = true;
    } else if (arg == "ping" || arg == "check") {
      command = arg;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "diffc_client: unknown argument '%s'\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }
  if (server_address.empty() || command.empty()) {
    Usage(argv[0]);
    return 2;
  }

  diffc::Result<diffc::net::DiffcClient> client =
      diffc::net::DiffcClient::Connect(server_address, client_options);
  if (!client.ok()) {
    std::fprintf(stderr, "diffc_client: %s\n", client.status().ToString().c_str());
    return 1;
  }

  if (command == "ping") {
    diffc::Result<std::uint64_t> echoed = client->Ping(nonce);
    if (!echoed.ok()) {
      std::fprintf(stderr, "diffc_client: %s\n", echoed.status().ToString().c_str());
      return 1;
    }
    std::printf("pong nonce=%llu\n", static_cast<unsigned long long>(*echoed));
    if (client_options.trace) {
      std::printf("trace_id=%s\n", client->last_trace().IdHex().c_str());
    }
    return 0;
  }

  // check
  diffc::Result<diffc::Universe> u = diffc::Universe::LettersChecked(static_cast<int>(n));
  if (!u.ok()) {
    std::fprintf(stderr, "diffc_client: --n: %s\n", u.status().ToString().c_str());
    return 2;
  }
  diffc::Result<diffc::ConstraintSet> premises = diffc::ParseConstraintSet(*u, premises_text);
  if (!premises.ok()) {
    std::fprintf(stderr, "diffc_client: premises: %s\n",
                 premises.status().ToString().c_str());
    return 2;
  }
  diffc::Result<diffc::ConstraintSet> goals = diffc::ParseConstraintSet(*u, goals_text);
  if (!goals.ok()) {
    std::fprintf(stderr, "diffc_client: goals: %s\n", goals.status().ToString().c_str());
    return 2;
  }
  if (goals->empty()) {
    std::fprintf(stderr, "diffc_client: no goals given\n");
    return 2;
  }

  diffc::Result<diffc::net::RegisterOkMsg> registered =
      client->RegisterPremises(static_cast<int>(n), *premises);
  if (!registered.ok()) {
    std::fprintf(stderr, "diffc_client: register: %s\n",
                 registered.status().ToString().c_str());
    return 1;
  }
  diffc::Result<diffc::net::BatchResultMsg> batch =
      client->CheckBatch(registered->handle, static_cast<int>(n), *goals,
                         std::chrono::milliseconds(deadline_ms));
  if (!batch.ok()) {
    std::fprintf(stderr, "diffc_client: check: %s\n", batch.status().ToString().c_str());
    return 1;
  }

  for (std::size_t i = 0; i < batch->results.size(); ++i) {
    const diffc::net::WireQueryResult& r = batch->results[i];
    const std::string goal = (*goals)[i].ToString(*u);
    if (r.status_code != diffc::StatusCode::kOk) {
      std::printf("%s: error: %s\n", goal.c_str(), r.status_message.c_str());
      continue;
    }
    if (r.has_counterexample) {
      const std::string witness = (*u).FormatSet(r.counterexample);
      std::printf("%s: %s (counterexample %s)\n", goal.c_str(), VerdictName(r.verdict),
                  witness.c_str());
    } else {
      std::printf("%s: %s\n", goal.c_str(), VerdictName(r.verdict));
    }
  }
  std::printf("# %llu queries: %llu implied, %llu not implied, %llu degraded, %llu failed\n",
              static_cast<unsigned long long>(batch->stats.queries),
              static_cast<unsigned long long>(batch->stats.implied),
              static_cast<unsigned long long>(batch->stats.not_implied),
              static_cast<unsigned long long>(batch->stats.degraded),
              static_cast<unsigned long long>(batch->stats.failed));
  if (client_options.trace) {
    // The id of the CHECK_BATCH call (the server echoes it in the reply):
    // feed it to diffcd's /tracez?trace_id=... for the joined span tree.
    std::printf("# trace_id=%s\n", client->last_trace().IdHex().c_str());
  }

  diffc::Status released = client->Release(registered->handle);
  if (!released.ok()) {
    std::fprintf(stderr, "diffc_client: release: %s\n", released.ToString().c_str());
    return 1;
  }
  return 0;
}
