#!/usr/bin/env python3
"""Golden tests for tools/diffc_lint.py (stdlib-only, like the linter).

The fixture trees under tools/lint_fixtures/ carry one deliberate violation
per rule (``bad/``) and the corresponding accepted patterns (``good/``).
These tests pin the exact findings — file, line, rule — so a rule that
silently stops firing (or starts over-firing) fails CI.

Run directly (``python3 tools/test_diffc_lint.py``) or via ctest
(``diffc_lint_selftest``).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
LINTER = os.path.join(TOOLS_DIR, "diffc_lint.py")
FIXTURES = os.path.join(TOOLS_DIR, "lint_fixtures")

# The golden findings of the bad fixture tree: (file, line, rule).
EXPECTED_BAD = [
    ("core/bad_discard.cc", 7, "void-discard"),
    ("core/bad_failpoint.cc", 6, "failpoint-name"),
    ("core/dup_failpoint.cc", 5, "failpoint-dup"),
    ("core/uncataloged_failpoint.cc", 5, "failpoint-catalog"),
    ("engine/bad_mutex.h", 15, "mutex-guarded-by"),
    ("engine/bad_mutex.h", 22, "mutex-guarded-by"),
    ("engine/bad_procedure_registry.cc", 3, "procedure-registry"),
    ("engine/bad_procedure_registry.cc", 3, "procedure-registry"),
    ("engine/naked_lock.cc", 7, "naked-lock"),
    ("fuzz/fuzz_uncataloged.cc", 1, "fuzzer-catalog"),
    ("net/bad_wire.h", 9, "wire-doc"),
    ("net/bad_wire.h", 13, "wire-doc"),
    ("net/bad_wire_registry.cc", 3, "wire-registry"),
    ("net/bad_wire_registry.cc", 3, "wire-registry"),
    ("net/wire.cc", 11, "decoder-discipline"),
    ("net/wire.cc", 16, "decoder-discipline"),
    ("net/wire.cc", 20, "decoder-discipline"),
    ("obs/bad_metric.cc", 5, "metric-name"),
    ("obs/dup_metric_b.cc", 5, "metric-dup"),
    ("prop/dpll.cc", 8, "solver-atomic"),
    ("rewrite/uncataloged_rule.cc", 5, "rewrite-catalog"),
    ("rewrite/uncataloged_rule.cc", 6, "rewrite-catalog"),
    ("util/bad_guard.h", 1, "include-guard"),
]

# Every rule the linter implements must be covered by the bad fixtures.
ALL_RULES = {
    "metric-name", "metric-dup", "failpoint-name", "failpoint-dup",
    "failpoint-catalog", "solver-atomic", "include-guard",
    "mutex-guarded-by", "naked-lock", "void-discard",
    "procedure-registry", "wire-registry", "wire-doc",
    "decoder-discipline", "fuzzer-catalog", "rewrite-catalog",
}


def run_lint(*args):
    proc = subprocess.run(
        [sys.executable, LINTER, *args],
        capture_output=True, text=True)
    return proc


class BadFixtureTest(unittest.TestCase):
    def test_exact_findings_and_exit_code(self):
        proc = run_lint("--root", os.path.join(FIXTURES, "bad"), "--format=json")
        self.assertEqual(proc.returncode, 1, proc.stderr)
        out = json.loads(proc.stdout)
        got = [(f["file"], f["line"], f["rule"]) for f in out["findings"]]
        self.assertEqual(got, EXPECTED_BAD)
        self.assertEqual(out["suppressed"], 0)

    def test_every_rule_is_exercised(self):
        self.assertEqual({rule for _, _, rule in EXPECTED_BAD}, ALL_RULES)

    def test_each_violation_exits_nonzero_alone(self):
        # Each fixture file must independently fail the lint: copy it alone
        # into a scratch tree (duplicate rules need both their files; the
        # catalog rule needs the DESIGN.md it checks against).
        companions = {
            "obs/dup_metric_b.cc": ["obs/dup_metric_a.cc"],
            "core/uncataloged_failpoint.cc": ["DESIGN.md"],
            # The doc rule is silent without the DESIGN.md it checks against.
            "net/bad_wire.h": ["DESIGN.md"],
            # The catalog rule is likewise silent without DESIGN.md.
            "fuzz/fuzz_uncataloged.cc": ["DESIGN.md"],
            # Both rewrite-catalog halves need their lookup targets.
            "rewrite/uncataloged_rule.cc": ["DESIGN.md", "tests/test_rewrite.cc"],
        }
        files = sorted({f for f, _, _ in EXPECTED_BAD})
        for rel in files:
            with tempfile.TemporaryDirectory() as scratch:
                for member in [rel] + companions.get(rel, []):
                    src = os.path.join(FIXTURES, "bad", member)
                    dst = os.path.join(scratch, member)
                    if os.path.dirname(dst):
                        os.makedirs(os.path.dirname(dst), exist_ok=True)
                    with open(src) as fin, open(dst, "w") as fout:
                        fout.write(fin.read())
                proc = run_lint("--root", scratch)
                self.assertEqual(proc.returncode, 1,
                                 f"{rel} alone should fail the lint\n{proc.stdout}")

    def test_text_format_lists_findings(self):
        proc = run_lint("--root", os.path.join(FIXTURES, "bad"))
        self.assertEqual(proc.returncode, 1)
        for f, line, rule in EXPECTED_BAD:
            self.assertIn(f"{f}:{line}: {rule}:", proc.stdout)


class GoodFixtureTest(unittest.TestCase):
    def test_clean_tree_exits_zero(self):
        proc = run_lint("--root", os.path.join(FIXTURES, "good"), "--format=json")
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertEqual(json.loads(proc.stdout)["findings"], [])


class BaselineTest(unittest.TestCase):
    def test_baseline_suppresses_and_write_regenerates(self):
        with tempfile.TemporaryDirectory() as scratch:
            baseline = os.path.join(scratch, "baseline.json")
            proc = run_lint("--root", os.path.join(FIXTURES, "bad"),
                            "--baseline", baseline, "--write-baseline")
            self.assertEqual(proc.returncode, 0, proc.stderr)
            with open(baseline) as f:
                entries = json.load(f)["findings"]
            self.assertEqual(len(entries), len(EXPECTED_BAD))

            # With the baseline, the same tree is green and fully suppressed.
            proc = run_lint("--root", os.path.join(FIXTURES, "bad"),
                            "--baseline", baseline, "--format=json")
            self.assertEqual(proc.returncode, 0, proc.stdout)
            out = json.loads(proc.stdout)
            self.assertEqual(out["findings"], [])
            self.assertEqual(out["suppressed"], len(EXPECTED_BAD))

    def test_missing_baseline_file_is_not_an_error(self):
        proc = run_lint("--root", os.path.join(FIXTURES, "good"),
                        "--baseline", "/nonexistent/baseline.json")
        self.assertEqual(proc.returncode, 0)


class CheckFixturesTest(unittest.TestCase):
    def test_real_fixture_tree_passes(self):
        proc = run_lint("--check-fixtures", FIXTURES)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_missing_bad_fixture_is_drift(self):
        # Rebuild the fixture tree without the solver-atomic fixture: the
        # audit must flag the now-dead rule and exit nonzero.
        with tempfile.TemporaryDirectory() as scratch:
            for dirpath, _, filenames in os.walk(FIXTURES):
                for name in filenames:
                    src = os.path.join(dirpath, name)
                    rel = os.path.relpath(src, FIXTURES)
                    if rel == os.path.join("bad", "prop", "dpll.cc"):
                        continue
                    dst = os.path.join(scratch, rel)
                    os.makedirs(os.path.dirname(dst), exist_ok=True)
                    with open(src) as fin, open(dst, "w") as fout:
                        fout.write(fin.read())
            proc = run_lint("--check-fixtures", scratch)
            self.assertEqual(proc.returncode, 1, proc.stdout)
            self.assertIn("solver-atomic", proc.stdout)
            self.assertIn("dead rule", proc.stdout)

    def test_dirty_good_tree_is_drift(self):
        with tempfile.TemporaryDirectory() as scratch:
            for sub in ("bad", "good"):
                for dirpath, _, filenames in os.walk(os.path.join(FIXTURES, sub)):
                    for name in filenames:
                        src = os.path.join(dirpath, name)
                        rel = os.path.relpath(src, FIXTURES)
                        dst = os.path.join(scratch, rel)
                        os.makedirs(os.path.dirname(dst), exist_ok=True)
                        with open(src) as fin, open(dst, "w") as fout:
                            fout.write(fin.read())
            with open(os.path.join(scratch, "good", "engine", "oops.cc"), "w") as f:
                f.write("int G();\nvoid F() {\n  (void)G();\n}\n")
            proc = run_lint("--check-fixtures", scratch)
            self.assertEqual(proc.returncode, 1, proc.stdout)
            self.assertIn("good fixture tree must be clean", proc.stdout)


class UsageTest(unittest.TestCase):
    def test_bad_root_exits_two(self):
        proc = run_lint("--root", "/nonexistent/tree")
        self.assertEqual(proc.returncode, 2)

    def test_missing_root_without_check_fixtures_exits_two(self):
        proc = run_lint()
        self.assertEqual(proc.returncode, 2)


if __name__ == "__main__":
    unittest.main()
