#!/usr/bin/env python3
"""Validate a benchmark JSON artifact against a subset-JSON-Schema file.

Stdlib-only (CI has no jsonschema package). Implements the subset the
committed schemas use: ``type`` (string or list of strings, including
"null"), ``properties``, ``required``, ``items``, ``minimum``,
``exclusiveMinimum``, ``maximum``, and ``const`` (the last three added for
BENCH_E5.schema.json, which pins the prepared-path speedup floor).
Unknown schema keys are ignored, so schemas can carry ``$comment``.

Usage: check_bench_schema.py <artifact.json> <schema.json>
Exit code 0 on success; 1 with a path-qualified error list otherwise.
"""

import json
import sys

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value, type_name):
    if type_name == "integer":
        # JSON has one number type; a float that is integral (1e3) counts,
        # but bool must not (bool is an int subclass in Python).
        if isinstance(value, bool):
            return False
        return isinstance(value, int) or (isinstance(value, float) and value.is_integer())
    if type_name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    expected = _TYPES.get(type_name)
    if expected is None:
        return True  # Unknown type name: be permissive.
    if expected is dict or expected is list or expected is str:
        return isinstance(value, expected)
    if type_name == "boolean":
        return isinstance(value, bool)
    return value is None


def validate(value, schema, path, errors):
    types = schema.get("type")
    if types is not None:
        if isinstance(types, str):
            types = [types]
        if not any(_type_ok(value, t) for t in types):
            errors.append(f"{path}: expected type {'/'.join(types)}, "
                          f"got {type(value).__name__}")
            return
        if value is None and "null" in types:
            return  # A nullable field that is null needs no further checks.

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key '{key}'")
        for key, subschema in schema.get("properties", {}).items():
            if key in value:
                validate(value[key], subschema, f"{path}.{key}", errors)

    if isinstance(value, list):
        items = schema.get("items")
        if items is not None:
            for i, element in enumerate(value):
                validate(element, items, f"{path}[{i}]", errors)

    minimum = schema.get("minimum")
    if minimum is not None and isinstance(value, (int, float)) and not isinstance(value, bool):
        if value < minimum:
            errors.append(f"{path}: {value} < minimum {minimum}")

    exclusive_minimum = schema.get("exclusiveMinimum")
    if (exclusive_minimum is not None and isinstance(value, (int, float))
            and not isinstance(value, bool)):
        if value <= exclusive_minimum:
            errors.append(f"{path}: {value} <= exclusiveMinimum {exclusive_minimum}")

    maximum = schema.get("maximum")
    if maximum is not None and isinstance(value, (int, float)) and not isinstance(value, bool):
        if value > maximum:
            errors.append(f"{path}: {value} > maximum {maximum}")

    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: {value!r} != const {schema['const']!r}")


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    artifact_path, schema_path = argv[1], argv[2]
    try:
        with open(artifact_path) as f:
            artifact = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: cannot parse {artifact_path}: {e}", file=sys.stderr)
        return 1
    with open(schema_path) as f:
        schema = json.load(f)

    errors = []
    validate(artifact, schema, "$", errors)
    if errors:
        print(f"FAIL: {artifact_path} does not match {schema_path}:", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print(f"OK: {artifact_path} matches {schema_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
