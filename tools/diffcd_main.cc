// diffcd — the long-running implication daemon. Binds the wire listener
// (and optionally the HTTP /metrics endpoint), then waits for SIGTERM /
// SIGINT and drains gracefully: in-flight batches finish (or are
// cancelled at the drain deadline), sessions close, and the process exits
// 0 on a clean drain, 1 on a forced one.
//
//   diffcd --listen=127.0.0.1:7411 --metrics=127.0.0.1:9095 \
//          --threads=8 --max-inflight=16 --drain-ms=5000

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "net/server.h"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void HandleSignal(int sig) { g_signal = sig; }

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--listen=HOST:PORT|unix:/path] [--metrics=HOST:PORT]\n"
               "          [--threads=N] [--max-inflight=N] [--max-handles=N]\n"
               "          [--drain-ms=N] [--simplify=N] [--trace]\n"
               "          [--trace_sample_rate=P] [--slow_query_ms=N]\n"
               "          [--trace_store_capacity=N]\n",
               argv0);
}

bool ParseFlag(const std::string& arg, const std::string& name, std::string* out) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

bool ParseIntFlag(const std::string& arg, const std::string& name, long* out) {
  std::string text;
  if (!ParseFlag(arg, name, &text)) return false;
  char* end = nullptr;
  long v = std::strtol(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v < 0) {
    std::fprintf(stderr, "diffcd: bad value for --%s: '%s'\n", name.c_str(), text.c_str());
    std::exit(2);
  }
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  diffc::net::ServerOptions options;
  options.listen_address = "127.0.0.1:7411";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string text;
    long value = 0;
    if (ParseFlag(arg, "listen", &text)) {
      options.listen_address = text;
    } else if (ParseFlag(arg, "metrics", &text)) {
      options.metrics_address = text;
    } else if (ParseIntFlag(arg, "threads", &value)) {
      options.engine.num_threads = static_cast<int>(value);
    } else if (ParseIntFlag(arg, "max-inflight", &value)) {
      options.max_inflight_batches = static_cast<std::size_t>(value);
    } else if (ParseIntFlag(arg, "max-handles", &value)) {
      options.max_handles_per_session = static_cast<std::size_t>(value);
    } else if (ParseIntFlag(arg, "drain-ms", &value)) {
      options.drain_deadline = std::chrono::milliseconds(value);
    } else if (ParseIntFlag(arg, "simplify", &value)) {
      // Premise canonicalization level: 0 = legacy inline path,
      // 1 = structural rewrite rules, 2 = full rule set.
      if (value > 2) {
        std::fprintf(stderr, "diffcd: --simplify must be 0, 1, or 2, got %ld\n", value);
        return 2;
      }
      options.engine.simplify_level = static_cast<int>(value);
    } else if (ParseFlag(arg, "trace_sample_rate", &text)) {
      char* end = nullptr;
      double rate = std::strtod(text.c_str(), &end);
      if (end == nullptr || *end != '\0' || rate < 0.0 || rate > 1.0) {
        std::fprintf(stderr, "diffcd: --trace_sample_rate must be in [0, 1], got '%s'\n",
                     text.c_str());
        return 2;
      }
      options.trace_sample_rate = rate;
    } else if (ParseIntFlag(arg, "slow_query_ms", &value)) {
      options.slow_request_threshold = std::chrono::milliseconds(value);
    } else if (ParseIntFlag(arg, "trace_store_capacity", &value)) {
      options.trace_store_capacity = static_cast<std::size_t>(value);
    } else if (arg == "--trace") {
      options.trace_requests = true;
      options.engine.trace = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "diffcd: unknown flag '%s'\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  diffc::net::DiffcdServer server(options);
  diffc::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "diffcd: %s\n", started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "diffcd: serving on %s\n", server.bound_address().c_str());
  if (!server.metrics_bound_address().empty()) {
    std::fprintf(stderr, "diffcd: metrics on http://%s/metrics\n",
                 server.metrics_bound_address().c_str());
  }

  struct sigaction sa = {};
  sa.sa_handler = HandleSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  // Park until a signal lands; the handler only sets a flag, the drain
  // itself runs on this (signal-safe) thread.
  while (g_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "diffcd: signal %d, draining (budget %lld ms)\n",
               static_cast<int>(g_signal),
               static_cast<long long>(options.drain_deadline.count()));
  diffc::Status drained = server.Shutdown();
  if (!drained.ok()) {
    std::fprintf(stderr, "diffcd: forced drain: %s\n", drained.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "diffcd: drained cleanly\n");
  return 0;
}
