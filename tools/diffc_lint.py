#!/usr/bin/env python3
"""diffc project-invariant linter: repo-specific rules the compiler can't check.

Stdlib-only (like check_bench_schema.py). Walks a source tree and enforces
the conventions that keep the concurrent subsystems and the observability
layer honest:

  metric-name       Registered metric names follow the documented scheme
                    (DESIGN.md s8/s9): ``diffc_<subsystem>_<name>`` with
                    ``_total`` for counters, ``_seconds`` for histograms,
                    neither suffix for gauges; literal names only.
  metric-dup        Each (metric name, label set) is registered by exactly
                    one call site; a second site would silently share (or
                    fork) a time series.
  failpoint-name    Fail-point names follow ``<area>/<site>`` (lowercase,
                    dash-separated words).
  failpoint-dup     Each fail-point name has exactly one site, so arming a
                    name fires a unique, known code path.
  failpoint-catalog Every well-formed fail-point site name appears
                    (backtick-quoted) in the DESIGN.md fail-point catalog
                    (s11 "Failure handling"), so the set of armable names
                    an operator can read about is complete. The catalog is
                    ``<root>/DESIGN.md`` or ``<root>/../DESIGN.md``; the
                    rule is silent when neither exists (fixture subsets).
  solver-atomic     No atomics and no metric mutations inside solver inner
                    loops (DPLL / CDCL / transversal): counters accumulate
                    thread-locally and flush at procedure exit (DESIGN.md
                    s8 "flush at boundary").
  include-guard     Header guards are ``DIFFC_<RELATIVE_PATH>_H_``.
  mutex-guarded-by  No raw ``std::mutex`` member (use ``diffc::Mutex``),
                    and every ``Mutex`` member has at least one
                    ``GUARDED_BY`` sibling — an unannotated mutex protects
                    nothing the analysis can prove.
  naked-lock        No ``std::lock_guard`` / ``std::unique_lock`` /
                    ``std::scoped_lock``; critical sections use the
                    annotated ``MutexLock`` (util/mutex.h).
  void-discard      A ``(void)`` discard must carry a comment (same or
                    previous line) saying why the value cannot matter;
                    this is the audited escape hatch for ``[[nodiscard]]``
                    ``Status``.
  procedure-registry  Every ``DecisionProcedure`` enumerator (except
                    ``kNone``) has a ``case DecisionProcedure::kX`` entry
                    in the name table AND a ``DIFFC_REGISTER_PROCEDURE(kX,
                    ...)`` site — a value without both is a procedure the
                    planner can never run or report. Silent when the tree
                    declares no ``enum class DecisionProcedure``.
  wire-registry     Every ``WireRequest`` enumerator has a
                    ``case WireRequest::kX`` entry in the name table AND a
                    ``DIFFC_REGISTER_WIRE_HANDLER(kX, ...)`` site — a wire
                    message type without both is a frame the server
                    advertises but can never dispatch (or names as
                    garbage in metrics and traces). Silent when the tree
                    declares no ``enum class WireRequest``.
  wire-doc          Every wire opcode (``WireRequest`` / ``WireResponse``
                    enumerator in a ``*wire*.h`` header) and every field
                    of a ``*Msg`` wire struct is documented in the
                    DESIGN.md s11 wire table: the backticked hex literal
                    (for opcodes) or backticked field name must appear
                    there, so the on-the-wire contract an operator reads
                    about never drifts from the structs that define it.
                    Same DESIGN.md lookup as failpoint-catalog; silent
                    when neither exists (fixture subsets).
  decoder-discipline  Decode-path files (``DECODER_PATH_FILES``) read
                    untrusted bytes only through the ``ByteCursor`` API
                    (net/cursor.h): no ``memcpy``/``memmove``, no
                    ``reinterpret_cast``, no pointer arithmetic or
                    indexing off ``.data()``, no ``*p++`` walks. The
                    cursor is the single audited home of raw reads, and
                    the fuzz targets (fuzz/) hammer it under ASan.
  fuzzer-catalog    Every fuzz target (``fuzz/fuzz_*.cc`` next to the
                    linted tree, same two-level lookup as the DESIGN.md
                    catalog) is documented (backtick-quoted) in the
                    DESIGN.md s13 fuzzing table, mirroring
                    failpoint-catalog: the set of harnesses a developer
                    can run must be complete in the docs. Silent when no
                    fuzz directory or no DESIGN.md exists.
  rewrite-catalog   Every ``DIFFC_REGISTER_REWRITE_RULE("name", ...)``
                    site is documented (backtick-quoted) in the DESIGN.md
                    s14 rewrite-rule catalog AND exercised (quoted) in
                    ``tests/test_rewrite.cc`` — an L(C) rewrite without a
                    soundness argument in the docs or a seeded property
                    test is a correctness hazard. Same two-level DESIGN.md
                    lookup as failpoint-catalog; the test half is silent
                    when no test_rewrite.cc exists (fixture subsets).

Findings print as ``path:line: rule: message`` (or ``--format=json``).
A committed baseline (``--baseline``) grandfathers known findings by
(rule, file, message) — line numbers may drift; ``--write-baseline``
regenerates it. ``--check-fixtures DIR`` audits the golden fixture trees
instead of linting: every implemented rule must fire somewhere under
``DIR/bad`` (a rule with no bad fixture is a dead rule) and ``DIR/good``
must be clean. Exit code 0 when no non-baselined findings (or no fixture
drift), 1 otherwise, 2 on usage errors.
"""

import argparse
import json
import os
import re
import sys

# Files whose inner loops are the engine's hot paths: the flush-at-boundary
# rule applies here. Paths are relative to --root.
SOLVER_LOOP_FILES = {
    "prop/dpll.cc",
    "prop/cdcl.cc",
    "lattice/hitting_set.cc",
}

# Files that decode untrusted bytes: every raw read must go through the
# ByteCursor API (net/cursor.h). The cursor header itself is the audited
# exception. Paths are relative to --root.
DECODER_PATH_FILES = {
    "net/wire.h",
    "net/wire.cc",
    "net/http.h",
    "net/http.cc",
}

# Every rule this linter implements, in docstring order. --check-fixtures
# verifies each has a bad fixture that fires it.
ALL_RULES = (
    "metric-name", "metric-dup", "failpoint-name", "failpoint-dup",
    "failpoint-catalog", "solver-atomic", "include-guard",
    "mutex-guarded-by", "naked-lock", "void-discard",
    "procedure-registry", "wire-registry", "wire-doc",
    "decoder-discipline", "fuzzer-catalog", "rewrite-catalog",
)

# The annotated wrapper itself legitimately holds a raw std::mutex member
# and uses std:: locking internally. Paths relative to --root.
MUTEX_WRAPPER_FILES = {
    "util/mutex.h",
}

# The registry implementation declares/defines GetCounter & friends; those
# are not registration call sites. Paths relative to --root.
METRIC_REGISTRY_FILES = {
    "obs/metrics.h",
    "obs/metrics.cc",
}

SOURCE_EXTENSIONS = (".h", ".cc")

METRIC_WORD = r"[a-z0-9]+(?:_[a-z0-9]+)*"
COUNTER_NAME_RE = re.compile(rf"^diffc_{METRIC_WORD}_total$")
HISTOGRAM_NAME_RE = re.compile(rf"^diffc_{METRIC_WORD}_seconds$")
GAUGE_NAME_RE = re.compile(rf"^diffc_{METRIC_WORD}$")
FAILPOINT_NAME_RE = re.compile(r"^[a-z0-9]+(?:-[a-z0-9]+)*(?:/[a-z0-9]+(?:-[a-z0-9]+)*)+$")

GET_METRIC_RE = re.compile(r"\b(GetCounter|GetGauge|GetHistogram)\s*\(")
FAILPOINT_RE = re.compile(r"\bDIFFC_FAILPOINT\s*\(\s*\"([^\"]*)\"\s*\)")
STRING_LITERAL_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')
NAKED_LOCK_RE = re.compile(r"\bstd::(lock_guard|unique_lock|scoped_lock)\b")
VOID_DISCARD_RE = re.compile(r"^\s*\(void\)\s*\S")
CLASS_RE = re.compile(
    r"\b(?:class|struct)\s+"
    r"(?:(?:\[\[[^\]]*\]\]|CAPABILITY\s*\([^)]*\)|SCOPED_CAPABILITY|"
    r"alignas\s*\([^)]*\))\s+)*"
    r"(\w+)\s*(?:final\s*)?(?::[^{;]*)?\{"
)
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(std::mutex|(?:diffc::)?Mutex)\s+(\w+)\s*;", re.MULTILINE
)
LOOP_HEADER_RE = re.compile(r"\b(for|while|do)\b")
SOLVER_ATOMIC_RE = re.compile(
    r"std::atomic\b|\.fetch_add\s*\(|\.fetch_sub\s*\(|"
    r"->Inc\s*\(|->Add\s*\(|->Sub\s*\(|->Set\s*\(|->Observe\s*\("
)
PROCEDURE_ENUM_RE = re.compile(
    r"\benum\s+class\s+DecisionProcedure\s*(?::[^{]*)?\{([^}]*)\}"
)
PROCEDURE_ENUMERATOR_RE = re.compile(r"\b(k\w+)\b")
PROCEDURE_CASE_RE = re.compile(r"\bcase\s+DecisionProcedure::(k\w+)")
PROCEDURE_REGISTER_RE = re.compile(r"\bDIFFC_REGISTER_PROCEDURE\s*\(\s*(k\w+)\s*,")
WIRE_ENUM_RE = re.compile(
    r"\benum\s+class\s+WireRequest\s*(?::[^{]*)?\{([^}]*)\}"
)
WIRE_CASE_RE = re.compile(r"\bcase\s+WireRequest::(k\w+)")
WIRE_REGISTER_RE = re.compile(r"\bDIFFC_REGISTER_WIRE_HANDLER\s*\(\s*(k\w+)\s*,")
WIRE_OPCODE_ENUM_RE = re.compile(
    r"\benum\s+class\s+(WireRequest|WireResponse)\s*(?::[^{]*)?\{([^}]*)\}"
)
WIRE_OPCODE_RE = re.compile(r"\b(k\w+)\s*=\s*(0x[0-9A-Fa-f]+)")
WIRE_MSG_STRUCT_RE = re.compile(r"\bstruct\s+(\w*Msg)\s*\{")
REWRITE_REGISTER_RE = re.compile(r"\bDIFFC_REGISTER_REWRITE_RULE\s*\(\s*\"([^\"]+)\"")
WIRE_FIELD_RE = re.compile(r"^\s*[A-Za-z_][\w:<>,\s]*[\s>]\s*(\w+)\s*(?:=[^;]*)?;")


class Finding:
    def __init__(self, file, line, rule, message):
        self.file = file
        self.line = line
        self.rule = rule
        self.message = message

    def key(self):
        # Line numbers drift with unrelated edits; a baseline entry matches
        # on the stable triple.
        return (self.rule, self.file, self.message)

    def as_dict(self):
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }

    def __str__(self):
        return f"{self.file}:{self.line}: {self.rule}: {self.message}"


def strip_comments(text):
    """Returns (no_comments, code_only), both newline-preserving.

    ``no_comments`` drops // and /* */ comments but keeps string literal
    contents (metric / fail-point names live there). ``code_only``
    additionally blanks string and char literal contents, so structural
    scans never trip on keywords inside strings.
    """
    no_comments = []
    code_only = []
    i = 0
    n = len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                state = "string"
                no_comments.append(c)
                code_only.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                no_comments.append(c)
                code_only.append(c)
                i += 1
                continue
            no_comments.append(c)
            code_only.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                no_comments.append(c)
                code_only.append(c)
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            if c == "\n":
                no_comments.append(c)
                code_only.append(c)
            i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\" and nxt:
                no_comments.append(c)
                no_comments.append(nxt)
                i += 2
                continue
            if c == quote:
                state = "code"
                no_comments.append(c)
                code_only.append(c)
                i += 1
                continue
            no_comments.append(c)
            if c == "\n":
                code_only.append(c)
            i += 1
    return "".join(no_comments), "".join(code_only)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def balanced_args(text, open_paren):
    """The argument text of the call whose '(' is at ``open_paren``."""
    depth = 0
    for i in range(open_paren, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1 : i]
    return text[open_paren + 1 :]


# ----------------------------------------------------------------- metrics


def metric_kind_checks(kind, name):
    if kind == "GetCounter":
        return COUNTER_NAME_RE.match(name), "diffc_<subsystem>_<name>_total"
    if kind == "GetHistogram":
        return HISTOGRAM_NAME_RE.match(name), "diffc_<subsystem>_<name>_seconds"
    ok = GAUGE_NAME_RE.match(name) and not name.endswith(("_total", "_seconds"))
    return ok, "diffc_<subsystem>_<name> (no _total/_seconds suffix)"


def labels_key(args):
    """A stable key for the label-set argument of a registration call."""
    m = re.search(r"\{\{.*\}\}", args, re.DOTALL)
    if m:
        return re.sub(r"\s+", "", m.group(0))
    m = re.search(r",\s*(\w+)\s*$", args, re.DOTALL)
    if m and m.group(1) not in ("true", "false"):
        return f"var:{m.group(1)}"
    return ""


def scan_metrics(rel, text, registrations, findings):
    if rel in METRIC_REGISTRY_FILES:
        return
    for m in GET_METRIC_RE.finditer(text):
        kind = m.group(1)
        line = line_of(text, m.start())
        args = balanced_args(text, m.end() - 1)
        name_m = STRING_LITERAL_RE.search(args)
        if not name_m:
            findings.append(
                Finding(rel, line, "metric-name",
                        f"{kind} call without a literal metric name; metric names "
                        "must be compile-time literals so the linter can audit them")
            )
            continue
        name = name_m.group(1)
        ok, scheme = metric_kind_checks(kind, name)
        if not ok:
            findings.append(
                Finding(rel, line, "metric-name",
                        f"metric '{name}' does not match the naming scheme {scheme}")
            )
        registrations.setdefault((name, labels_key(args)), []).append((rel, line))


def scan_failpoints(rel, text, sites, findings):
    for m in FAILPOINT_RE.finditer(text):
        name = m.group(1)
        line = line_of(text, m.start())
        if not FAILPOINT_NAME_RE.match(name):
            findings.append(
                Finding(rel, line, "failpoint-name",
                        f"fail point '{name}' does not match the naming scheme "
                        "<area>/<site> (lowercase, dash-separated words)")
            )
        sites.setdefault(name, []).append((rel, line))


def load_failpoint_catalog(root):
    """The DESIGN.md text the catalog rule checks against, or None.

    Looks in the linted tree first, then one level up (the repo layout:
    ``--root src`` with DESIGN.md at the repo root). Returning None keeps
    the rule silent for trees without a catalog, so single-fixture scratch
    copies exercise only their own rule.
    """
    for candidate in (os.path.join(root, "DESIGN.md"),
                      os.path.join(root, os.pardir, "DESIGN.md")):
        if os.path.isfile(candidate):
            with open(candidate, encoding="utf-8") as f:
                return f.read()
    return None


def report_failpoint_catalog(root, sites, findings):
    catalog = load_failpoint_catalog(root)
    if catalog is None:
        return
    for name, occurrences in sorted(sites.items()):
        # Malformed names are already failpoint-name findings; demanding a
        # catalog entry for them would ask for documenting a name that must
        # be renamed instead.
        if not FAILPOINT_NAME_RE.match(name):
            continue
        if f"`{name}`" in catalog:
            continue
        file, line = occurrences[0]
        findings.append(
            Finding(file, line, "failpoint-catalog",
                    f"fail point '{name}' is not listed in the DESIGN.md "
                    "fail-point catalog; every site an operator can arm "
                    "must be documented there")
        )


def report_duplicates(table, rule, what, findings):
    for name, occurrences in sorted(table.items()):
        if len(occurrences) <= 1:
            continue
        where = ", ".join(f"{f}:{ln}" for f, ln in occurrences)
        for f, ln in occurrences[1:]:
            findings.append(
                Finding(f, ln, rule,
                        f"{what} '{name}' registered at more than one site ({where}); "
                        "each must have exactly one")
            )


# ------------------------------------------------------ procedure registry


def scan_procedure_registry(rel, text, procedures):
    """Collects enum declarations, name-table cases, and registrations."""
    for m in PROCEDURE_ENUM_RE.finditer(text):
        names = PROCEDURE_ENUMERATOR_RE.findall(m.group(1))
        procedures["enums"].append((rel, line_of(text, m.start()), names))
    for m in PROCEDURE_CASE_RE.finditer(text):
        procedures["cases"].setdefault(m.group(1), []).append(
            (rel, line_of(text, m.start())))
    for m in PROCEDURE_REGISTER_RE.finditer(text):
        procedures["registrations"].setdefault(m.group(1), []).append(
            (rel, line_of(text, m.start())))


def report_procedure_registry(procedures, findings):
    """Every enumerator except kNone needs a name case and a registration."""
    for rel, line, names in procedures["enums"]:
        for name in names:
            if name == "kNone":
                continue
            if name not in procedures["cases"]:
                findings.append(
                    Finding(rel, line, "procedure-registry",
                            f"DecisionProcedure enumerator '{name}' has no "
                            f"'case DecisionProcedure::{name}' name-table entry; "
                            "stats and traces would print it as garbage")
                )
            if name not in procedures["registrations"]:
                findings.append(
                    Finding(rel, line, "procedure-registry",
                            f"DecisionProcedure enumerator '{name}' has no "
                            f"DIFFC_REGISTER_PROCEDURE({name}, ...) site; the "
                            "planner can never run a procedure that is not "
                            "registered")
                )


# ----------------------------------------------------------- wire registry


def scan_wire_registry(rel, text, wire):
    """Collects WireRequest declarations, name-table cases, registrations."""
    for m in WIRE_ENUM_RE.finditer(text):
        names = PROCEDURE_ENUMERATOR_RE.findall(m.group(1))
        wire["enums"].append((rel, line_of(text, m.start()), names))
    for m in WIRE_CASE_RE.finditer(text):
        wire["cases"].setdefault(m.group(1), []).append(
            (rel, line_of(text, m.start())))
    for m in WIRE_REGISTER_RE.finditer(text):
        wire["registrations"].setdefault(m.group(1), []).append(
            (rel, line_of(text, m.start())))


def report_wire_registry(wire, findings):
    """Every WireRequest enumerator needs a name case and a handler."""
    for rel, line, names in wire["enums"]:
        for name in names:
            if name not in wire["cases"]:
                findings.append(
                    Finding(rel, line, "wire-registry",
                            f"WireRequest enumerator '{name}' has no "
                            f"'case WireRequest::{name}' name-table entry; "
                            "metrics and traces would print it as garbage")
                )
            if name not in wire["registrations"]:
                findings.append(
                    Finding(rel, line, "wire-registry",
                            f"WireRequest enumerator '{name}' has no "
                            f"DIFFC_REGISTER_WIRE_HANDLER({name}, ...) site; "
                            "the server advertises a frame type it can never "
                            "dispatch")
                )


# ------------------------------------------------------------ wire contract


def scan_wire_doc(rel, text, wire_doc):
    """Collects opcodes and ``*Msg`` fields from wire headers.

    Only headers with "wire" in the basename are the protocol definition;
    enums or Msg structs elsewhere (handlers, tests) are not the contract.
    """
    base = os.path.basename(rel)
    if not base.endswith(".h") or "wire" not in base:
        return
    for m in WIRE_OPCODE_ENUM_RE.finditer(text):
        enum_name = m.group(1)
        for om in WIRE_OPCODE_RE.finditer(m.group(2)):
            wire_doc["opcodes"].append(
                (rel, line_of(text, m.start(2) + om.start()), enum_name,
                 om.group(1), om.group(2)))
    for m in WIRE_MSG_STRUCT_RE.finditer(text):
        struct_name = m.group(1)
        open_brace = m.end() - 1
        depth = 0
        end = len(text)
        for i in range(open_brace, len(text)):
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
                if depth == 0:
                    end = i
                    break
        # Blank nested braces so method bodies never read as fields; skip
        # lines with '(' (methods) or 'static' (named constructors).
        surface = top_level_text(text[open_brace + 1 : end])
        pos = open_brace + 1
        for line in surface.split("\n"):
            if "(" not in line and "static" not in line:
                fm = WIRE_FIELD_RE.match(line)
                if fm:
                    wire_doc["fields"].append(
                        (rel, line_of(text, pos + fm.start(1)), struct_name,
                         fm.group(1)))
            pos += len(line) + 1


def report_wire_doc(root, wire_doc, findings):
    """Every opcode hex and Msg field must be backticked in DESIGN.md."""
    catalog = load_failpoint_catalog(root)
    if catalog is None:
        return
    for rel, line, enum_name, kname, hexval in wire_doc["opcodes"]:
        if f"`{hexval}`" in catalog:
            continue
        findings.append(
            Finding(rel, line, "wire-doc",
                    f"wire opcode {enum_name}::{kname} ({hexval}) is not in "
                    f"the DESIGN.md wire table; document it as `{hexval}` so "
                    "the on-the-wire contract never drifts from the code"))
    for rel, line, struct_name, field in wire_doc["fields"]:
        if f"`{field}`" in catalog:
            continue
        findings.append(
            Finding(rel, line, "wire-doc",
                    f"wire message field {struct_name}.{field} is not in the "
                    f"DESIGN.md wire table; document it as `{field}` so the "
                    "on-the-wire contract never drifts from the code"))


# ------------------------------------------------------- decoder discipline

# Raw-byte-read idioms banned outside ByteCursor: bulk copies, type puns,
# arithmetic or indexing off a buffer's .data(), and *p++ walks. Plain
# std::string find/substr slicing stays legal — it is bounds-checked by
# construction.
DECODER_BAN_RES = (
    (re.compile(r"\bmem(?:cpy|move)\s*\("), "memcpy/memmove"),
    (re.compile(r"\breinterpret_cast\b"), "reinterpret_cast"),
    (re.compile(r"\.data\s*\(\s*\)\s*[+\[]"), "pointer arithmetic off .data()"),
    (re.compile(r"\*\s*\w+\s*\+\+"), "*p++ pointer walk"),
)


def scan_decoder_discipline(rel, code, findings):
    for ban_re, what in DECODER_BAN_RES:
        for m in ban_re.finditer(code):
            findings.append(
                Finding(rel, line_of(code, m.start()), "decoder-discipline",
                        f"{what} on the decode path; untrusted bytes are read "
                        "only through the ByteCursor API (net/cursor.h), the "
                        "single audited home of raw reads")
            )


# ----------------------------------------------------------- fuzzer catalog


def find_fuzz_targets(root):
    """``fuzz_*`` stems of the fuzz dir beside the linted tree, or [].

    Same two-level lookup as ``load_failpoint_catalog``: ``<root>/fuzz``
    first, then ``<root>/../fuzz`` (the repo layout: ``--root src`` with
    fuzz/ at the repo root). Missing dir means no targets to audit.
    """
    for candidate in (os.path.join(root, "fuzz"),
                      os.path.join(root, os.pardir, "fuzz")):
        if os.path.isdir(candidate):
            return sorted(
                name[:-len(".cc")] for name in os.listdir(candidate)
                if name.startswith("fuzz_") and name.endswith(".cc"))
    return []


def report_fuzzer_catalog(root, findings):
    catalog = load_failpoint_catalog(root)
    if catalog is None:
        return
    for target in find_fuzz_targets(root):
        if f"`{target}`" in catalog:
            continue
        findings.append(
            Finding(f"fuzz/{target}.cc", 1, "fuzzer-catalog",
                    f"fuzz target '{target}' is not listed in the DESIGN.md "
                    "fuzzing catalog; every harness a developer can run must "
                    "be documented there")
        )


# ----------------------------------------------------------- rewrite catalog


def scan_rewrite_rules(rel, text, rewrite_sites):
    for m in REWRITE_REGISTER_RE.finditer(text):
        rewrite_sites.setdefault(m.group(1), []).append(
            (rel, line_of(text, m.start())))


def load_rewrite_tests(root):
    """The test_rewrite.cc text the catalog rule checks against, or None.

    Same two-level lookup as ``load_failpoint_catalog``: the repo layout is
    ``--root src`` with tests/ at the repo root. None keeps the test half
    silent for trees without the suite (fixture subsets).
    """
    for candidate in (os.path.join(root, "tests", "test_rewrite.cc"),
                      os.path.join(root, os.pardir, "tests", "test_rewrite.cc")):
        if os.path.isfile(candidate):
            with open(candidate, encoding="utf-8") as f:
                return f.read()
    return None


def report_rewrite_catalog(root, rewrite_sites, findings):
    catalog = load_failpoint_catalog(root)
    if catalog is None:
        return
    tests = load_rewrite_tests(root)
    for name, occurrences in sorted(rewrite_sites.items()):
        file, line = occurrences[0]
        if f"`{name}`" not in catalog:
            findings.append(
                Finding(file, line, "rewrite-catalog",
                        f"rewrite rule '{name}' is not listed in the DESIGN.md "
                        "rewrite-rule catalog (s14); every L(C) rewrite needs "
                        "its soundness argument documented there")
            )
        if tests is not None and f'"{name}"' not in tests:
            findings.append(
                Finding(file, line, "rewrite-catalog",
                        f"rewrite rule '{name}' is never exercised in "
                        "tests/test_rewrite.cc; every registered rule must "
                        "pass the seeded L(C)-equivalence rule tester")
            )


# ------------------------------------------------------------ solver loops


def scan_solver_loops(rel, code, findings):
    """Flags atomics / metric mutations inside for/while/do bodies."""
    # For each '{', decide whether its statement header (text since the
    # previous ';', '{' or '}') is a loop; a position is "in a loop" when
    # any enclosing brace is.
    stack = []
    header_start = 0
    loop_regions = []  # (start, end) char ranges of loop bodies
    open_loop_starts = []
    for i, c in enumerate(code):
        if c in ";{}":
            if c == "{":
                header = code[header_start:i]
                is_loop = bool(LOOP_HEADER_RE.search(header))
                stack.append(is_loop)
                if is_loop:
                    open_loop_starts.append(i)
            elif c == "}":
                if stack:
                    was_loop = stack.pop()
                    if was_loop and open_loop_starts:
                        loop_regions.append((open_loop_starts.pop(), i))
            header_start = i + 1
    for m in SOLVER_ATOMIC_RE.finditer(code):
        if any(start < m.start() < end for start, end in loop_regions):
            findings.append(
                Finding(rel, line_of(code, m.start()), "solver-atomic",
                        f"'{m.group(0).strip()}' inside a solver inner loop; "
                        "accumulate thread-locally and flush at procedure exit "
                        "(DESIGN.md s8 flush-at-boundary rule)")
            )


# ---------------------------------------------------------- include guards


def scan_include_guard(rel, raw, findings):
    expected = "DIFFC_" + re.sub(r"[/.]", "_", rel).upper() + "_"
    ifndef = re.search(r"^#ifndef\s+(\S+)", raw, re.MULTILINE)
    if not ifndef:
        findings.append(Finding(rel, 1, "include-guard",
                                f"missing include guard (expected {expected})"))
        return
    got = ifndef.group(1)
    line = line_of(raw, ifndef.start())
    if got != expected:
        findings.append(
            Finding(rel, line, "include-guard",
                    f"include guard '{got}' should be '{expected}'")
        )
        return
    define = re.search(r"^#define\s+(\S+)", raw, re.MULTILINE)
    if not define or define.group(1) != expected:
        findings.append(
            Finding(rel, line, "include-guard",
                    f"#define after #ifndef must define '{expected}'")
        )
    closes = re.findall(r"^#endif\s*//\s*(\S+)\s*$", raw, re.MULTILINE)
    if not closes or closes[-1] != expected:
        findings.append(
            Finding(rel, raw.count("\n") + 1, "include-guard",
                    f"closing #endif must carry the comment '// {expected}'")
        )


# ----------------------------------------------------------- mutex members


def class_bodies(code):
    """Yields (body_start, body_text) for every class/struct body."""
    for m in CLASS_RE.finditer(code):
        open_brace = m.end() - 1
        depth = 0
        for i in range(open_brace, len(code)):
            if code[i] == "{":
                depth += 1
            elif code[i] == "}":
                depth -= 1
                if depth == 0:
                    yield open_brace + 1, code[open_brace + 1 : i]
                    break


def top_level_text(body):
    """The class body with nested brace contents blanked (newlines kept)."""
    out = []
    depth = 0
    for c in body:
        if c == "{":
            depth += 1
            out.append(c)
        elif c == "}":
            depth -= 1
            out.append(c)
        elif depth > 0 and c != "\n":
            out.append(" ")
        else:
            out.append(c)
    return "".join(out)


def scan_mutex_members(rel, code, findings):
    if rel in MUTEX_WRAPPER_FILES:
        return
    for body_start, body in class_bodies(code):
        surface = top_level_text(body)
        for m in MUTEX_MEMBER_RE.finditer(surface):
            mutex_type, member = m.group(1), m.group(2)
            line = line_of(code, body_start + m.start(1))
            if mutex_type == "std::mutex":
                findings.append(
                    Finding(rel, line, "mutex-guarded-by",
                            f"raw std::mutex member '{member}'; use diffc::Mutex "
                            "(util/mutex.h) so the thread-safety analysis can "
                            "track it")
                )
            elif not re.search(rf"GUARDED_BY\s*\(\s*{re.escape(member)}\s*\)", body):
                findings.append(
                    Finding(rel, line, "mutex-guarded-by",
                            f"Mutex member '{member}' has no GUARDED_BY({member}) "
                            "sibling; an unannotated mutex protects nothing the "
                            "analysis can prove")
                )


# ------------------------------------------------------- locks & discards


def scan_naked_locks(rel, code, findings):
    if rel in MUTEX_WRAPPER_FILES:
        return
    for m in NAKED_LOCK_RE.finditer(code):
        findings.append(
            Finding(rel, line_of(code, m.start()), "naked-lock",
                    f"std::{m.group(1)} is invisible to the thread-safety "
                    "analysis; use MutexLock (util/mutex.h)")
        )


def scan_void_discards(rel, raw, findings):
    lines = raw.split("\n")
    for i, line in enumerate(lines):
        if not VOID_DISCARD_RE.match(line):
            continue
        has_comment = "//" in line or (i > 0 and lines[i - 1].strip().startswith("//"))
        if not has_comment:
            findings.append(
                Finding(rel, i + 1, "void-discard",
                        "(void) discard without an adjacent comment explaining "
                        "why the value cannot matter")
            )


# ------------------------------------------------------------------ driver


def lint_file(root, rel, registrations, failpoint_sites, procedures, wire,
              wire_doc, rewrite_sites, findings):
    with open(os.path.join(root, rel), encoding="utf-8") as f:
        raw = f.read()
    no_comments, code_only = strip_comments(raw)
    scan_metrics(rel, no_comments, registrations, findings)
    scan_failpoints(rel, no_comments, failpoint_sites, findings)
    scan_procedure_registry(rel, no_comments, procedures)
    scan_wire_registry(rel, no_comments, wire)
    scan_wire_doc(rel, no_comments, wire_doc)
    scan_rewrite_rules(rel, no_comments, rewrite_sites)
    if rel in SOLVER_LOOP_FILES:
        scan_solver_loops(rel, code_only, findings)
    if rel in DECODER_PATH_FILES:
        scan_decoder_discipline(rel, code_only, findings)
    if rel.endswith(".h"):
        scan_include_guard(rel, raw, findings)
    scan_mutex_members(rel, code_only, findings)
    scan_naked_locks(rel, code_only, findings)
    scan_void_discards(rel, raw, findings)


def lint_tree(root):
    findings = []
    registrations = {}
    failpoint_sites = {}
    procedures = {"enums": [], "cases": {}, "registrations": {}}
    wire = {"enums": [], "cases": {}, "registrations": {}}
    wire_doc = {"opcodes": [], "fields": []}
    rewrite_sites = {}
    rels = []
    for dirpath, _, filenames in os.walk(root):
        for name in sorted(filenames):
            if name.endswith(SOURCE_EXTENSIONS):
                rels.append(os.path.relpath(os.path.join(dirpath, name), root))
    for rel in sorted(rels):
        lint_file(root, rel.replace(os.sep, "/"), registrations, failpoint_sites,
                  procedures, wire, wire_doc, rewrite_sites, findings)
    report_procedure_registry(procedures, findings)
    report_wire_registry(wire, findings)
    report_wire_doc(root, wire_doc, findings)
    metric_display = {}
    for (name, labels), occurrences in registrations.items():
        metric_display[name if not labels else f"{name} {labels}"] = occurrences
    report_duplicates(metric_display, "metric-dup", "metric", findings)
    report_duplicates(failpoint_sites, "failpoint-dup", "fail point", findings)
    report_failpoint_catalog(root, failpoint_sites, findings)
    report_fuzzer_catalog(root, findings)
    report_rewrite_catalog(root, rewrite_sites, findings)
    return findings


def check_fixtures(fixtures_dir):
    """Fails on fixture-directory drift: dead rules or a dirty good tree."""
    bad = os.path.join(fixtures_dir, "bad")
    good = os.path.join(fixtures_dir, "good")
    if not os.path.isdir(bad) or not os.path.isdir(good):
        print(f"diffc_lint: {fixtures_dir} must contain bad/ and good/ trees",
              file=sys.stderr)
        return 2
    drift = 0
    fired = {f.rule for f in lint_tree(bad)}
    for rule in ALL_RULES:
        if rule not in fired:
            print(f"diffc_lint: rule '{rule}' fires on nothing under {bad}; "
                  "a rule with no bad fixture is a dead rule")
            drift += 1
    for stray in sorted(fired - set(ALL_RULES)):
        print(f"diffc_lint: bad fixtures fire unknown rule '{stray}'; "
              "update ALL_RULES or the fixture")
        drift += 1
    for finding in lint_tree(good):
        print(f"diffc_lint: good fixture tree must be clean, got: {finding}")
        drift += 1
    print(f"diffc_lint: fixture audit: {len(ALL_RULES)} rule(s), "
          f"{drift} drift problem(s)", file=sys.stderr)
    return 1 if drift else 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="source tree to lint (e.g. src); required unless "
                             "--check-fixtures is given")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON; findings listed there are suppressed")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline with the current findings")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--check-fixtures", metavar="DIR", default=None,
                        help="audit the golden fixture trees under DIR instead of "
                             "linting --root: every rule must fire under DIR/bad "
                             "(a rule with no bad fixture is a dead rule) and "
                             "DIR/good must be clean")
    args = parser.parse_args(argv[1:])

    if args.check_fixtures:
        return check_fixtures(args.check_fixtures)

    if not args.root:
        print("diffc_lint: --root is required (or use --check-fixtures)",
              file=sys.stderr)
        return 2
    if not os.path.isdir(args.root):
        print(f"diffc_lint: no such directory: {args.root}", file=sys.stderr)
        return 2

    findings = lint_tree(args.root)
    findings.sort(key=lambda f: (f.file, f.line, f.rule))

    baseline_keys = set()
    if args.baseline and os.path.exists(args.baseline) and not args.write_baseline:
        with open(args.baseline, encoding="utf-8") as f:
            baseline = json.load(f)
        for entry in baseline.get("findings", []):
            baseline_keys.add((entry["rule"], entry["file"], entry["message"]))

    if args.write_baseline:
        if not args.baseline:
            print("diffc_lint: --write-baseline requires --baseline", file=sys.stderr)
            return 2
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump({
                "comment": "Grandfathered diffc_lint findings. Do not add to this "
                           "file by hand: fix the finding, or rerun with "
                           "--write-baseline and justify the growth in review.",
                "findings": [
                    {"rule": f.rule, "file": f.file, "message": f.message}
                    for f in findings
                ],
            }, f, indent=2)
            f.write("\n")
        print(f"diffc_lint: wrote {len(findings)} finding(s) to {args.baseline}")
        return 0

    fresh = [f for f in findings if f.key() not in baseline_keys]
    suppressed = len(findings) - len(fresh)

    if args.format == "json":
        print(json.dumps({
            "findings": [f.as_dict() for f in fresh],
            "suppressed": suppressed,
        }, indent=2))
    else:
        for f in fresh:
            print(str(f))
        summary = f"diffc_lint: {len(fresh)} finding(s)"
        if suppressed:
            summary += f", {suppressed} suppressed by baseline"
        print(summary, file=sys.stderr)
    return 1 if fresh else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
